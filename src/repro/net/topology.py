"""Random peer-to-peer topologies.

"Lacking an existing model of the system, we construct a random network
by connecting each node to at least 5 other nodes, chosen uniformly at
random" (Section 7).  :func:`random_topology` reproduces exactly that
construction and retries until the graph is connected (it almost always
is at degree >= 5).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field


@dataclass
class Topology:
    """An undirected graph over node ids ``0..n_nodes-1``."""

    n_nodes: int
    edges: set[frozenset[int]] = field(default_factory=set)

    def add_edge(self, a: int, b: int) -> None:
        if a == b:
            raise ValueError("self loops are not allowed")
        if not (0 <= a < self.n_nodes and 0 <= b < self.n_nodes):
            raise ValueError(f"edge ({a}, {b}) references unknown node")
        self.edges.add(frozenset((a, b)))

    def neighbors(self, node: int) -> list[int]:
        """Sorted neighbor list (sorted for determinism)."""
        found = []
        for edge in self.edges:
            if node in edge:
                (other,) = edge - {node}
                found.append(other)
        return sorted(found)

    def neighbor_map(self) -> dict[int, list[int]]:
        """Precomputed adjacency lists for the whole graph."""
        adjacency: dict[int, list[int]] = {i: [] for i in range(self.n_nodes)}
        for edge in self.edges:
            a, b = sorted(edge)
            adjacency[a].append(b)
            adjacency[b].append(a)
        for peers in adjacency.values():
            peers.sort()
        return adjacency

    def degree(self, node: int) -> int:
        return sum(1 for edge in self.edges if node in edge)

    def is_connected(self) -> bool:
        """BFS reachability from node 0."""
        if self.n_nodes == 0:
            return True
        adjacency = self.neighbor_map()
        seen = {0}
        frontier = deque([0])
        while frontier:
            node = frontier.popleft()
            for peer in adjacency[node]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return len(seen) == self.n_nodes

    def diameter_bound(self) -> int:
        """Eccentricity of node 0 — a cheap lower bound on the diameter."""
        adjacency = self.neighbor_map()
        depth = {0: 0}
        frontier = deque([0])
        while frontier:
            node = frontier.popleft()
            for peer in adjacency[node]:
                if peer not in depth:
                    depth[peer] = depth[node] + 1
                    frontier.append(peer)
        return max(depth.values()) if depth else 0


def random_topology(
    n_nodes: int,
    min_degree: int = 5,
    rng: random.Random | None = None,
    max_attempts: int = 100,
) -> Topology:
    """Build the paper's random graph: each node picks >= ``min_degree`` peers.

    Each node draws ``min_degree`` distinct peers uniformly at random (so
    final degrees exceed the minimum, as in the real Bitcoin network
    where inbound connections raise degree).  Retries until connected.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if min_degree >= n_nodes:
        raise ValueError("min_degree must be below node count")
    rng = rng or random.Random(0)
    for _ in range(max_attempts):
        topo = Topology(n_nodes)
        population = list(range(n_nodes))
        for node in range(n_nodes):
            others = [peer for peer in population if peer != node]
            for peer in rng.sample(others, min_degree):
                topo.add_edge(node, peer)
        if topo.is_connected():
            return topo
    raise RuntimeError(
        f"failed to build a connected topology in {max_attempts} attempts"
    )


def ring_topology(n_nodes: int) -> Topology:
    """A simple ring — worst-case diameter, useful in propagation tests."""
    if n_nodes < 3:
        raise ValueError("a ring needs at least three nodes")
    topo = Topology(n_nodes)
    for node in range(n_nodes):
        topo.add_edge(node, (node + 1) % n_nodes)
    return topo


def complete_topology(n_nodes: int) -> Topology:
    """Every pair connected — zero-hop relay, for analytical tests."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    topo = Topology(n_nodes)
    for a in range(n_nodes):
        for b in range(a + 1, n_nodes):
            topo.add_edge(a, b)
    return topo
