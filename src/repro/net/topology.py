"""Random peer-to-peer topologies.

"Lacking an existing model of the system, we construct a random network
by connecting each node to at least 5 other nodes, chosen uniformly at
random" (Section 7).  :func:`random_topology` reproduces exactly that
construction and retries until the graph is connected (it almost always
is at degree >= 5).

The adjacency is served from a cached CSR (compressed sparse row)
layout: one flat ``indices`` array of sorted neighbors and an
``indptr`` offset array, built once per edge set.  The position of a
neighbor inside ``indices`` doubles as the *directed edge id* the
network layer keys its per-link arrays by, so every ``neighbors()`` /
``degree()`` call — and every relay fan-out in
:class:`~repro.net.network.Network` — is an O(degree) slice instead of
an O(E) scan over the edge set.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field


@dataclass
class Topology:
    """An undirected graph over node ids ``0..n_nodes-1``."""

    n_nodes: int
    edges: set[frozenset[int]] = field(default_factory=set)
    # Cached CSR adjacency: (indptr, indices, edge_count_at_build).
    # The edge-count stamp makes the cache self-invalidating — adding
    # an edge changes len(edges), so a stale CSR is never served.
    _csr: tuple[list[int], list[int], int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def add_edge(self, a: int, b: int) -> None:
        if a == b:
            raise ValueError("self loops are not allowed")
        if not (0 <= a < self.n_nodes and 0 <= b < self.n_nodes):
            raise ValueError(f"edge ({a}, {b}) references unknown node")
        self.edges.add(frozenset((a, b)))

    def csr(self) -> tuple[list[int], list[int]]:
        """The cached CSR adjacency: ``(indptr, indices)``.

        ``indices[indptr[v]:indptr[v + 1]]`` is node ``v``'s sorted
        neighbor list; the flat position of each entry is the directed
        edge id ``v -> indices[k]`` used by the network's per-edge
        arrays.  Built once and reused until the edge set grows.
        """
        cached = self._csr
        if cached is not None and cached[2] == len(self.edges):
            return cached[0], cached[1]
        rows: list[list[int]] = [[] for _ in range(self.n_nodes)]
        for edge in self.edges:
            a, b = sorted(edge)
            rows[a].append(b)
            rows[b].append(a)
        indptr = [0] * (self.n_nodes + 1)
        indices: list[int] = []
        for node, row in enumerate(rows):
            row.sort()
            indices.extend(row)
            indptr[node + 1] = len(indices)
        self._csr = (indptr, indices, len(self.edges))
        return indptr, indices

    def sorted_edges(self) -> list[tuple[int, int]]:
        """Undirected edges as sorted ``(a, b)`` pairs, ascending.

        This is the canonical edge enumeration order: the network layer
        draws the k-th pair latency for the k-th entry of this list
        (pinned in ``tests/test_net_network.py``), so the order must
        never depend on set/hash layout.
        """
        return sorted(tuple(sorted(edge)) for edge in self.edges)

    def neighbors(self, node: int) -> list[int]:
        """Sorted neighbor list (sorted for determinism)."""
        indptr, indices = self.csr()
        return indices[indptr[node] : indptr[node + 1]]

    def neighbor_map(self) -> dict[int, list[int]]:
        """Precomputed adjacency lists for the whole graph."""
        indptr, indices = self.csr()
        return {
            node: indices[indptr[node] : indptr[node + 1]]
            for node in range(self.n_nodes)
        }

    def degree(self, node: int) -> int:
        indptr, _ = self.csr()
        return indptr[node + 1] - indptr[node]

    def is_connected(self) -> bool:
        """BFS reachability from node 0."""
        if self.n_nodes == 0:
            return True
        indptr, indices = self.csr()
        seen = {0}
        frontier = deque([0])
        while frontier:
            node = frontier.popleft()
            for peer in indices[indptr[node] : indptr[node + 1]]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        return len(seen) == self.n_nodes

    def diameter_bound(self) -> int:
        """Eccentricity of node 0 — a cheap lower bound on the diameter."""
        indptr, indices = self.csr()
        depth = {0: 0}
        frontier = deque([0])
        while frontier:
            node = frontier.popleft()
            for peer in indices[indptr[node] : indptr[node + 1]]:
                if peer not in depth:
                    depth[peer] = depth[node] + 1
                    frontier.append(peer)
        return max(depth.values()) if depth else 0


def random_topology(
    n_nodes: int,
    min_degree: int = 5,
    rng: random.Random | None = None,
    max_attempts: int = 100,
) -> Topology:
    """Build the paper's random graph: each node picks >= ``min_degree`` peers.

    Each node draws ``min_degree`` distinct peers uniformly at random (so
    final degrees exceed the minimum, as in the real Bitcoin network
    where inbound connections raise degree).  Retries until connected.
    """
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    if min_degree >= n_nodes:
        raise ValueError("min_degree must be below node count")
    rng = rng or random.Random(0)
    for _ in range(max_attempts):
        topo = Topology(n_nodes)
        add_edge = topo.add_edge
        # ``others`` is the population minus the current node.  Rebuilt
        # per node it is O(n^2) allocations; instead it is maintained
        # incrementally: for node i the list is [0..i-1, i+1..n-1], and
        # stepping i -> i+1 only changes position i (i+1 becomes i).
        # The list contents at every step are identical to the rebuilt
        # version, so the `rng.sample` draw sequence is preserved
        # exactly.
        others = list(range(1, n_nodes))
        for node in range(n_nodes):
            if node > 0:
                others[node - 1] = node - 1
            for peer in rng.sample(others, min_degree):
                add_edge(node, peer)
        if topo.is_connected():
            return topo
    raise RuntimeError(
        f"failed to build a connected topology in {max_attempts} attempts"
    )


def ring_topology(n_nodes: int) -> Topology:
    """A simple ring — worst-case diameter, useful in propagation tests."""
    if n_nodes < 3:
        raise ValueError("a ring needs at least three nodes")
    topo = Topology(n_nodes)
    for node in range(n_nodes):
        topo.add_edge(node, (node + 1) % n_nodes)
    return topo


def complete_topology(n_nodes: int) -> Topology:
    """Every pair connected — zero-hop relay, for analytical tests."""
    if n_nodes < 2:
        raise ValueError("need at least two nodes")
    topo = Topology(n_nodes)
    for a in range(n_nodes):
        for b in range(a + 1, n_nodes):
            topo.add_edge(a, b)
    return topo
