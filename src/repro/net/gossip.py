"""Object relay over the peer-to-peer network.

Bitcoin relays blocks with an announce/request/deliver handshake
(``inv`` → ``getdata`` → object), which avoids sending large objects to
peers that already have them.  :class:`GossipNode` implements that
protocol as a reusable base class; protocol nodes subclass it and get
epidemic dissemination with de-duplication for free.

Two relay modes are provided for the ablation DESIGN.md calls out:

* ``RelayMode.INV`` — the Bitcoin handshake (default).
* ``RelayMode.FLOOD`` — push full objects immediately; lower latency,
  higher bandwidth, as used by fast-relay networks [Corallo 2013].

De-duplication state (`_store`, `_requested`, `_rejected`, …) is keyed
by dense interned ints from the network's shared
:class:`~repro.net.interning.ObjectIdTable`, not by the raw 32-byte
ids: with every node in a 1000-node run asking "seen this hash?" per
announcement, small-int set probes measurably beat hashing 32-byte
keys.  Wire messages still carry raw ``bytes`` ids — interning is a
receiver-side detail, invisible on the wire.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from ..obs.trace import short_hash
from .events import Event
from .network import Message, Network
from .simulator import Simulator

# Wire sizes for control messages, matching Bitcoin's protocol framing:
# an inv/getdata with one entry is 24 byte header + 37 byte payload.
INV_SIZE = 61
GETDATA_SIZE = 61
# A tip solicitation is an empty getheaders in miniature: header only.
GETTIP_SIZE = 24


class RelayMode(enum.Enum):
    """How newly learned objects are pushed to peers."""

    INV = "inv"
    FLOOD = "flood"


@dataclass(frozen=True, slots=True)
class StoredObject:
    """An object held in a node's relay store."""

    obj_id: bytes
    kind: str
    data: Any
    size: int


class GossipNode:
    """Base class providing de-duplicated epidemic relay.

    Subclasses implement :meth:`deliver`, called exactly once per new
    object, and may call :meth:`announce` to inject locally created
    objects (e.g. a freshly mined block) into the gossip layer.
    """

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        network: Network,
        relay_mode: RelayMode = RelayMode.INV,
        verification_delay: float = 0.0,
        verification_seconds_per_byte: float = 0.0,
        request_timeout: float = 120.0,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.relay_mode = relay_mode
        # Per-object processing cost before relaying (block verification);
        # the paper notes large blocks "take longer to verify and propagate",
        # so the delay has a fixed part and a size-proportional part.
        self.verification_delay = verification_delay
        self.verification_seconds_per_byte = verification_seconds_per_byte
        # How long to wait for a requested object before giving up on
        # that peer and retrying elsewhere (0 disables).  Generous by
        # default: a 1 MB block takes ~80 s to serialize at the paper's
        # 100 kbit/s, and a premature timeout would duplicate traffic.
        self.request_timeout = request_timeout
        # All relay bookkeeping is keyed by the run-wide interned id
        # (dense int), never the raw bytes — see the module docstring.
        self._ids = network.object_ids
        self._store: dict[int, StoredObject] = {}
        self._requested: set[int] = set()
        self._rejected: set[int] = set()
        # While a getdata is outstanding, remember *other* peers that
        # announced the same object: if the request times out (the
        # response lost to churn or a partition), the next announcer is
        # asked instead of the id being stuck in _requested forever.
        self._alt_sources: dict[int, list[int]] = {}
        self._request_timers: dict[int, Event] = {}
        # Adjacency never changes mid-run (churn is modelled as offline
        # sets, not edge removal), so the neighbor list is cached once
        # instead of looked up per relayed object.
        self._neighbors: list[int] = network.neighbors(node_id)
        # Observability: None when disabled, so tracing costs one
        # attribute check at the (rare) sites that emit records.
        self._tracer = network.tracer
        # DoS protection: peers accumulate misbehavior points for
        # invalid objects; at the threshold their traffic is ignored,
        # mirroring Bitcoin Core's ban score.
        self.misbehavior: dict[int, int] = {}
        self.ban_threshold = 100
        self.invalid_object_penalty = 20
        network.attach(node_id, self)

    # -- subclass interface -------------------------------------------------

    def deliver(self, obj: StoredObject, sender: int | None) -> bool | None:
        """Handle a newly learned object; ``sender`` is None if local.

        Return ``False`` to veto relay: the object is dropped from the
        store, remembered as rejected (so repeated invs are ignored),
        and not forwarded — the behaviour of a real client that fails
        block validation.  Any other return value relays normally.
        """
        raise NotImplementedError

    def best_object_id(self) -> bytes | None:
        """The id of the object a resyncing peer should fetch first.

        Protocol nodes return their chain tip; the base class has no
        chain, so peers asking it for a tip get nothing.  Returning an
        id that is not in the relay store (the genesis block, say) is
        fine — the tip solicitation is then simply not answered.
        """
        return None

    # -- public operations --------------------------------------------------

    def knows(self, obj_id: bytes) -> bool:
        iid = self._ids.lookup(obj_id)
        return iid is not None and iid in self._store

    def get_object(self, obj_id: bytes) -> StoredObject | None:
        iid = self._ids.lookup(obj_id)
        return None if iid is None else self._store.get(iid)

    def has_requested(self, obj_id: bytes) -> bool:
        """Whether a getdata for ``obj_id`` is currently outstanding."""
        iid = self._ids.lookup(obj_id)
        return iid is not None and iid in self._requested

    def request_tips(self) -> None:
        """Ask every neighbor for its best tip (rejoin resync).

        Each peer answers a ``gettip`` with an inv of its chain tip;
        an unknown tip is then fetched through the normal handshake and
        orphan handling backfills the gap by recursive parent fetch —
        so a node that was down across several blocks catches up
        without waiting for the next block to be mined.
        """
        self.network.multicast(self.node_id, Message("gettip", None, GETTIP_SIZE))

    def reset_relay_state(self) -> None:
        """Drop volatile relay bookkeeping (crash-restart modeling).

        Outstanding requests, their retry timers, and alternate-source
        lists all describe in-flight handshakes that died with the
        node; keeping them would make :meth:`_on_inv` ignore fresh
        announcements of exactly the objects the node is missing until
        the stale timers expire.  Validation verdicts (``_rejected``)
        and peer bans survive — they are judgements, not bookkeeping.
        """
        for timer in self._request_timers.values():
            timer.cancel()
        self._request_timers.clear()
        self._requested.clear()
        self._alt_sources.clear()

    def request_object(self, peer: int, obj_id: bytes) -> None:
        """Explicitly fetch an object from a peer (ancestor backfill).

        Used by nodes that receive an orphan block: asking the sender
        for the missing parent recursively heals gaps after churn or
        partitions, Bitcoin's headers-first sync in miniature.  Unlike
        inv handling, an explicit request re-sends even if a previous
        attempt is outstanding — the earlier response may have been
        lost to churn.
        """
        iid = self._ids.intern(obj_id)
        if iid in self._store:
            return
        self._request_from(peer, obj_id, iid)

    def announce(self, obj_id: bytes, kind: str, data: Any, size: int) -> None:
        """Inject a locally created object and start relaying it.

        The :meth:`deliver` veto applies here exactly as on the remote
        path: a locally generated object that fails validation is
        dropped, remembered as rejected, and never relayed.
        """
        iid = self._ids.intern(obj_id)
        if iid in self._store or iid in self._rejected:
            return
        stored = StoredObject(obj_id, kind, data, size)
        self._store[iid] = stored
        if self.deliver(stored, sender=None) is False:
            self._store.pop(iid, None)
            self._rejected.add(iid)
            if self._tracer is not None:
                self._tracer.emit(
                    "obj_reject",
                    self.sim.now,
                    node=self.node_id,
                    obj=short_hash(obj_id),
                    kind=kind,
                    sender=-1,
                )
            return
        self._relay(stored, exclude=None)

    # -- network plumbing ---------------------------------------------------

    def penalize(self, peer: int, points: int) -> None:
        """Charge a peer misbehavior points; at the threshold, ban it."""
        self.misbehavior[peer] = self.misbehavior.get(peer, 0) + points

    def is_banned(self, peer: int) -> bool:
        return self.misbehavior.get(peer, 0) >= self.ban_threshold

    def on_message(self, sender: int, message: Message) -> None:
        # Inlined is_banned: the misbehavior dict is empty for honest
        # networks, so the truthiness check skips the lookup entirely.
        misbehavior = self.misbehavior
        if misbehavior and misbehavior.get(sender, 0) >= self.ban_threshold:
            return
        kind = message.kind
        if kind == "inv":
            self._on_inv(sender, message.payload)
        elif kind == "getdata":
            self._on_getdata(sender, message.payload)
        elif kind == "object":
            self._on_object(sender, message.payload)
        elif kind == "gettip":
            self._on_gettip(sender)
        else:
            self.handle_protocol_message(sender, message)

    def handle_protocol_message(self, sender: int, message: Message) -> None:
        """Hook for subclasses with extra message kinds; default drops."""

    def _relay(self, stored: StoredObject, exclude: int | None) -> None:
        # One immutable message shared by every neighbor send; the
        # network books the whole fan-out as a single batched
        # event-queue call instead of per-peer scheduling.
        if self.relay_mode is RelayMode.FLOOD:
            message = Message("object", stored, stored.size)
        else:
            message = Message("inv", (stored.obj_id, stored.kind), INV_SIZE)
        self.network.multicast(
            self.node_id, message, exclude=-1 if exclude is None else exclude
        )

    def _request_from(self, peer: int, obj_id: bytes, iid: int) -> None:
        """Send a getdata and arm the retry timer for it."""
        self._requested.add(iid)
        if self.request_timeout > 0:
            old = self._request_timers.get(iid)
            if old is not None:
                old.cancel()
            self._request_timers[iid] = self.sim.schedule(
                self.request_timeout, self._on_request_timeout, iid
            )
        self.network.send(
            self.node_id, peer, Message("getdata", obj_id, GETDATA_SIZE)
        )

    def _on_request_timeout(self, iid: int) -> None:
        self._request_timers.pop(iid, None)
        if iid in self._store or iid in self._rejected:
            self._alt_sources.pop(iid, None)
            return
        # The response was lost (churn, partition, or an offline peer):
        # clear the outstanding mark so future invs can retrigger, and
        # retry immediately from the next peer that announced it.
        self._requested.discard(iid)
        alternates = self._alt_sources.get(iid)
        if alternates:
            peer = alternates.pop(0)
            if not alternates:
                del self._alt_sources[iid]
            if self._tracer is not None:
                self._tracer.emit(
                    "gossip_retry",
                    self.sim.now,
                    node=self.node_id,
                    obj=short_hash(self._ids.obj_id(iid)),
                    peer=peer,
                )
            self._request_from(peer, self._ids.obj_id(iid), iid)

    def _on_inv(self, sender: int, payload: tuple[bytes, str]) -> None:
        obj_id, _kind = payload
        iid = self._ids.intern(obj_id)
        if iid in self._store or iid in self._rejected:
            return
        if iid in self._requested:
            # Already being fetched; remember this announcer as a
            # fallback in case the outstanding request times out.
            alternates = self._alt_sources.setdefault(iid, [])
            if sender not in alternates:
                alternates.append(sender)
            return
        self._request_from(sender, obj_id, iid)

    def _on_gettip(self, sender: int) -> None:
        """Answer a tip solicitation with an inv of our best object."""
        obj_id = self.best_object_id()
        if obj_id is None:
            return
        stored = self.get_object(obj_id)
        if stored is None:
            return  # tip not relayable (genesis): nothing useful to offer
        self.network.send(
            self.node_id,
            sender,
            Message("inv", (obj_id, stored.kind), INV_SIZE),
        )

    def _on_getdata(self, sender: int, obj_id: bytes) -> None:
        stored = self.get_object(obj_id)
        if stored is None:
            return
        self.network.send(
            self.node_id, sender, Message("object", stored, stored.size)
        )

    def _on_object(self, sender: int, stored: StoredObject) -> None:
        iid = self._ids.intern(stored.obj_id)
        self._requested.discard(iid)
        timer = self._request_timers.pop(iid, None)
        if timer is not None:
            timer.cancel()
        self._alt_sources.pop(iid, None)
        if iid in self._store:
            return
        self._store[iid] = stored
        delay = (
            self.verification_delay
            + self.verification_seconds_per_byte * stored.size
        )
        if delay > 0:
            self.sim.schedule(delay, self._accept, stored, sender)
        else:
            self._accept(stored, sender)

    def _accept(self, stored: StoredObject, sender: int) -> None:
        verdict = self.deliver(stored, sender)
        if verdict is False:
            # Validation failed: forget it, never forward it, and
            # charge the peer that sent it.
            iid = self._ids.intern(stored.obj_id)
            self._store.pop(iid, None)
            self._rejected.add(iid)
            self.penalize(sender, self.invalid_object_penalty)
            if self._tracer is not None:
                self._tracer.emit(
                    "obj_reject",
                    self.sim.now,
                    node=self.node_id,
                    obj=short_hash(stored.obj_id),
                    kind=stored.kind,
                    sender=sender,
                )
            return
        self._relay(stored, exclude=sender)
