"""Dense interning of object ids.

Gossip de-duplication asks "have I seen this 32-byte hash?" once per
node per announcement — the single most frequent membership test in a
run.  Interning every object id into a dense ``int`` the first time any
node sees it turns those per-node ``set[bytes]`` probes into small-int
membership checks, and shrinks each node's relay bookkeeping from N
copies of 32-byte keys to N ints.

One :class:`ObjectIdTable` is shared per :class:`~repro.net.network
.Network` (i.e. per run).  Interning happens only at the receiver
boundary — wire messages still carry raw ``bytes`` ids, so forged or
replayed messages in tests keep working unchanged.

The table is generic over its key type: the network's instance is an
``ObjectIdTable[bytes]`` over object hashes, while offline tooling
(``repro trace toptalkers``) reuses it to intern whatever node
identifiers appear in a saved trace into dense array indices.
"""

from __future__ import annotations

from typing import Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)


class ObjectIdTable(Generic[K]):
    """Bijective key ↔ dense ``int`` mapping, append-only."""

    __slots__ = ("_index", "_ids")

    def __init__(self) -> None:
        self._index: dict[K, int] = {}
        self._ids: list[K] = []

    def __len__(self) -> int:
        return len(self._ids)

    def intern(self, obj_id: K) -> int:
        """The dense id for ``obj_id``, assigning the next one if new."""
        index = self._index
        iid = index.get(obj_id)
        if iid is None:
            iid = len(self._ids)
            index[obj_id] = iid
            self._ids.append(obj_id)
        return iid

    def lookup(self, obj_id: K) -> int | None:
        """The dense id for ``obj_id`` if already interned, else None.

        Read-only probes (``knows``/``get_object``) use this so that
        merely asking about an id never grows the table.
        """
        return self._index.get(obj_id)

    def obj_id(self, iid: int) -> K:
        """The raw key behind a dense id (for traces and wire)."""
        return self._ids[iid]
