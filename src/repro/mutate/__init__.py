"""Mutation-adequacy analysis for the checker stack.

``repro.mutate`` plants consensus-critical defects — the fee-split,
signature, maturity, and fork-choice bugs Bitcoin-NG's security
argument cares about — and measures which layer of the repo's checker
stack (semantic lint, incremental sanitizer, golden fingerprints,
tier-1 tests) actually catches each one.  See :mod:`repro.mutate.engine`
for the pipeline and ``docs/mutation.md`` for the operator catalog and
survivor policy.
"""

from .engine import (
    MutantTask,
    MutantVerdict,
    MutationEngine,
    MutationRun,
    ShadowTree,
    companion_test,
)
from .operators import OPERATORS, Mutant, generate_mutants
from .report import (
    bench_section,
    gate,
    kill_matrix,
    module_scores,
    parse_allowlist,
    render_report,
)
from .sites import SiteMap, build_site_index, enumerate_sites

__all__ = [
    "MutantTask",
    "MutantVerdict",
    "MutationEngine",
    "MutationRun",
    "ShadowTree",
    "companion_test",
    "OPERATORS",
    "Mutant",
    "generate_mutants",
    "bench_section",
    "gate",
    "kill_matrix",
    "module_scores",
    "parse_allowlist",
    "render_report",
    "SiteMap",
    "build_site_index",
    "enumerate_sites",
]
