"""The mutation engine: shadow trees, tiered kills, verdict caching.

Every mutant runs the same gauntlet, cheapest tier first, stopping at
the first kill:

1. **lint** — in-process.  The mutated module's summary is spliced into
   the clean semantic index (everything else reused, exactly the
   content-sha trick ``repro lint`` plays across runs) and the full
   rule set re-runs.  The tree is pinned clean, so *any* unsuppressed
   finding kills the mutant.
2. **sanitizer** / 3. **golden** — one subprocess probe
   (``python -m repro.mutate.probe``) against a mutated shadow tree
   runs a short Bitcoin-NG simulation with the adapter's invariant
   checkers in incremental mode.  Violations kill at the sanitizer
   tier; a crash, hang, or digest-fingerprint divergence from the clean
   baseline kills at the golden tier.
4. **tests** — the mutated file's companion tier-1 module
   (``src/repro/core/chain.py`` → ``tests/test_core_chain.py``) under
   ``pytest -x``; a failure kills, and files with no companion skip the
   tier.

Mutants that outlive all four tiers are *survivors*: each must either
grow a new rule/invariant that kills it or be catalogued with a
rationale in ``docs/mutation.md`` (the allowlist the CI gate enforces).

Shadow trees are hardlink farms: building one costs directory entries,
not bytes, and mutation is unlink-then-write so the original inode is
never touched.  Verdicts cache on ``(file sha, mutant id)`` — mutant
ids are line-free, so editing *other* files (or refactoring this one
without changing the mutated span's text) keeps verdicts warm.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable, cast

from ..clock import wall_clock
from ..experiments.parallel import SweepExecutor
from ..lint.engine import _parse, build_semantic_index
from ..lint.findings import Finding, is_suppressed
from ..lint.rules import ImportMap, ModuleContext, Rule, all_rules
from ..lint.semantic.extract import content_sha, extract_module
from ..lint.semantic.index import SemanticIndex
from ..lint.semantic.rules import SemanticRule
from .operators import (
    CATALOG_VERSION,
    OPERATORS,
    OPERATORS_BY_NAME,
    Mutant,
    MutationOperator,
    generate_mutants,
)
from .sites import TARGET_PACKAGES, build_site_index, enumerate_sites

#: Bump when verdict semantics change; invalidates every cached verdict.
ENGINE_VERSION = 1

#: Tier order is the kill pipeline order (sanitizer/golden share a probe).
TIERS: tuple[str, ...] = ("lint", "sanitizer", "golden", "tests")

DEFAULT_CACHE = Path(".mutate-cache.json")
DEFAULT_REPORT = Path(".mutate-report.json")


@dataclass(frozen=True)
class MutantVerdict:
    """The pipeline's final word on one mutant."""

    mutant_id: str
    operator: str
    path: str
    qualname: str
    description: str
    lineno: int
    status: str  #: ``"killed"`` or ``"survived"``
    tier: str  #: killing tier, or ``""`` for survivors
    detail: str  #: what killed it (rule code, INV code, divergence, test)
    seconds: float = 0.0
    cached: bool = False

    def to_dict(self) -> dict[str, Any]:
        return {
            "mutant_id": self.mutant_id,
            "operator": self.operator,
            "path": self.path,
            "qualname": self.qualname,
            "description": self.description,
            "lineno": self.lineno,
            "status": self.status,
            "tier": self.tier,
            "detail": self.detail,
            "seconds": round(self.seconds, 4),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MutantVerdict":
        return cls(
            mutant_id=data["mutant_id"],
            operator=data["operator"],
            path=data["path"],
            qualname=data["qualname"],
            description=data["description"],
            lineno=int(data["lineno"]),
            status=data["status"],
            tier=data["tier"],
            detail=data["detail"],
            seconds=float(data.get("seconds", 0.0)),
        )


@dataclass(frozen=True)
class MutantTask:
    """Everything one worker needs to evaluate one mutant (picklable)."""

    mutant: Mutant
    repo_root: str
    src_root: str  #: relative to repo_root, e.g. ``"src"``
    tree_sha: str  #: clean-tree content sha; keys the worker memo
    baseline_fingerprint: tuple[Any, ...]
    probe_timeout: float = 120.0
    pytest_timeout: float = 300.0
    tiers: tuple[str, ...] = TIERS


@dataclass
class MutationRun:
    """One full engine run: verdicts plus provenance."""

    verdicts: list[MutantVerdict] = field(default_factory=list)
    n_files: int = 0
    n_sites: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wall_seconds: float = 0.0
    baseline_fingerprint: tuple[Any, ...] = ()

    @property
    def killed(self) -> list[MutantVerdict]:
        return [v for v in self.verdicts if v.status == "killed"]

    @property
    def survivors(self) -> list[MutantVerdict]:
        return [v for v in self.verdicts if v.status == "survived"]

    @property
    def score(self) -> float:
        if not self.verdicts:
            return 1.0
        return len(self.killed) / len(self.verdicts)

    def to_dict(self) -> dict[str, Any]:
        return {
            "version": ENGINE_VERSION,
            "catalog_version": CATALOG_VERSION,
            "n_files": self.n_files,
            "n_sites": self.n_sites,
            "n_mutants": len(self.verdicts),
            "n_killed": len(self.killed),
            "n_survived": len(self.survivors),
            "score": round(self.score, 4),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wall_seconds": round(self.wall_seconds, 3),
            "baseline_fingerprint": list(self.baseline_fingerprint),
            "verdicts": [v.to_dict() for v in self.verdicts],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "MutationRun":
        run = cls(
            verdicts=[
                MutantVerdict.from_dict(v) for v in data.get("verdicts", [])
            ],
            n_files=int(data.get("n_files", 0)),
            n_sites=int(data.get("n_sites", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            baseline_fingerprint=tuple(data.get("baseline_fingerprint", ())),
        )
        return run


# -- shadow trees ------------------------------------------------------------


class ShadowTree:
    """A hardlink copy of the source tree that can host one mutant.

    Mutation is unlink-then-write: writing *through* a hardlink would
    corrupt the real tree, so the link is removed first and a fresh
    inode carries the mutated bytes.  :meth:`restore` relinks the
    original.
    """

    def __init__(self, repo_root: Path, src_root: str, shadow_dir: Path):
        self.repo_root = repo_root
        self.src_root = src_root
        self.shadow_dir = shadow_dir
        self._mutated: Path | None = None
        self._build()

    @property
    def src_path(self) -> Path:
        return self.shadow_dir / self.src_root

    def _build(self) -> None:
        source = self.repo_root / self.src_root
        for path in sorted(source.rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(self.repo_root)
            target = self.shadow_dir / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            if target.exists():
                target.unlink()
            try:
                os.link(path, target)
            except OSError:  # cross-device fallback
                target.write_bytes(path.read_bytes())

    def mutate(self, display_path: str, mutated_source: str) -> None:
        self.restore()
        target = self.shadow_dir / display_path
        target.unlink()
        target.write_text(mutated_source, encoding="utf-8")
        self._mutated = target

    def restore(self) -> None:
        if self._mutated is None:
            return
        rel = self._mutated.relative_to(self.shadow_dir)
        self._mutated.unlink()
        original = self.repo_root / rel
        try:
            os.link(original, self._mutated)
        except OSError:
            self._mutated.write_bytes(original.read_bytes())
        self._mutated = None


# -- worker state ------------------------------------------------------------

#: Per-process memo: shadow tree, parsed clean modules, clean index.
#: Workers are forked/spawned per pool, so module globals are private.
_WORKER: dict[str, Any] = {}


def _worker_state(task: MutantTask) -> dict[str, Any]:
    key = (task.repo_root, task.src_root, task.tree_sha)
    if _WORKER.get("key") != key:
        repo_root = Path(task.repo_root)
        shadow_dir = (
            repo_root / ".mutate-shadow" / f"w{os.getpid()}"
        )
        shadow_dir.mkdir(parents=True, exist_ok=True)
        modules = []
        for path in sorted((repo_root / task.src_root).rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            parsed = _parse(path)
            # Display paths must be repo-relative so they line up with
            # mutant paths and shadow-tree paths.
            modules.append(
                replace(
                    parsed,
                    display_path=path.relative_to(repo_root).as_posix(),
                )
            )
        _WORKER.clear()
        _WORKER.update(
            key=key,
            shadow=ShadowTree(repo_root, task.src_root, shadow_dir),
            modules=modules,
            index=build_semantic_index(modules),
        )
    return _WORKER


def _probe_env(shadow_src: Path) -> dict[str, str]:
    # Subprocess probes need the parent environment (PATH, interpreter
    # config) with only PYTHONPATH redirected at the shadow tree.
    env = dict(os.environ)  # repro: allow[NG202]
    env["PYTHONPATH"] = str(shadow_src)
    env["PYTHONDONTWRITEBYTECODE"] = "1"
    return env


# -- tiers -------------------------------------------------------------------


def _lint_tier(
    task: MutantTask, mutated_source: str, state: dict[str, Any]
) -> str | None:
    """First unsuppressed finding on the spliced index, or ``None``.

    Reuses every clean module summary and re-extracts only the mutated
    one — the same incremental contract the on-disk index cache gives
    ``repro lint``, applied in memory.
    """
    import ast as ast_mod

    mutant = task.mutant
    clean_index: SemanticIndex = state["index"]
    parsed_by_path = {m.display_path: m for m in state["modules"]}
    clean = parsed_by_path[mutant.path]

    tree = ast_mod.parse(mutated_source)
    lines = mutated_source.splitlines()
    summary = extract_module(
        tree,
        display_path=mutant.path,
        module=clean.module,
        lines=lines,
        sha=content_sha(mutated_source),
    )
    modules = dict(clean_index.modules)
    modules[mutant.path] = summary
    index = SemanticIndex(modules=modules)

    ast_rules = [r for r in all_rules() if issubclass(r, Rule)]
    semantic_rules = [
        r for r in all_rules() if issubclass(r, SemanticRule)
    ]

    context = ModuleContext(
        path=mutant.path,
        module=clean.module,
        lines=lines,
        imports=ImportMap.of(tree),
        set_attrs=index.set_identifiers(),
        tuple_dict_attrs=index.tuple_dict_identifiers(),
    )
    findings: list[Finding] = []
    for rule_cls in ast_rules:
        if not rule_cls.applies_to(clean.module):
            continue
        rule = cast("type[Rule]", rule_cls)(context)
        rule.visit(tree)
        findings.extend(
            f for f in rule.findings if not is_suppressed(f, lines)
        )

    lines_by_path = {
        m.display_path: m.lines for m in state["modules"]
    }
    lines_by_path[mutant.path] = lines
    module_by_path = {
        m.display_path: m.module for m in state["modules"]
    }
    for semantic_cls in semantic_rules:
        for finding in cast("type[SemanticRule]", semantic_cls)().check(
            index, lines_by_path
        ):
            if not semantic_cls.applies_to(
                module_by_path.get(finding.path, "")
            ):
                continue
            if is_suppressed(finding, lines_by_path.get(finding.path, [])):
                continue
            findings.append(finding)

    if not findings:
        return None
    findings.sort(key=lambda f: (f.path, f.line, f.code))
    first = findings[0]
    return f"{first.code} {first.message[:120]}"


def _probe_tier(
    task: MutantTask, state: dict[str, Any]
) -> tuple[str, str] | None:
    """Sanitizer/golden verdict from one probe run, or ``None``."""
    shadow: ShadowTree = state["shadow"]
    try:
        completed = subprocess.run(
            [sys.executable, "-m", "repro.mutate.probe"],
            cwd=task.repo_root,
            env=_probe_env(shadow.src_path),
            capture_output=True,
            text=True,
            timeout=task.probe_timeout,
        )
    except subprocess.TimeoutExpired:
        return ("golden", "probe timeout (likely non-terminating mutant)")
    try:
        payload = json.loads(completed.stdout)
    except json.JSONDecodeError:
        tail = (completed.stderr or completed.stdout).strip()[-160:]
        return ("golden", f"probe crashed: {tail or 'no output'}")
    if not payload.get("ok", False):
        error = str(payload.get("error", "")).strip().splitlines()
        return ("golden", f"probe raised: {error[-1] if error else '?'}")
    violations = payload.get("violations", [])
    if violations:
        codes = sorted({v["code"] for v in violations})
        return ("sanitizer", f"invariant violation: {', '.join(codes)}")
    fingerprint = tuple(
        tuple(part) if isinstance(part, list) else part
        for part in payload.get("fingerprint", [])
    )
    baseline = tuple(
        tuple(part) if isinstance(part, list) else part
        for part in task.baseline_fingerprint
    )
    if fingerprint != baseline:
        return ("golden", "state fingerprint diverged from clean baseline")
    return None


def companion_test(display_path: str, tests_root: str = "tests") -> str:
    """``src/repro/<pkg>/<mod>.py`` → ``tests/test_<pkg>_<mod>.py``."""
    parts = Path(display_path).with_suffix("").parts
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        tail = parts[anchor + 1 :]
    else:
        tail = parts[-1:]
    return f"{tests_root}/test_{'_'.join(tail)}.py"


def _tests_tier(task: MutantTask, state: dict[str, Any]) -> str | None:
    shadow: ShadowTree = state["shadow"]
    test_file = companion_test(task.mutant.path)
    if not (Path(task.repo_root) / test_file).exists():
        return None
    try:
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "pytest",
                test_file,
                "-x",
                "-q",
                "-p",
                "no:cacheprovider",
            ],
            cwd=task.repo_root,
            env=_probe_env(shadow.src_path),
            capture_output=True,
            text=True,
            timeout=task.pytest_timeout,
        )
    except subprocess.TimeoutExpired:
        return f"{test_file} timed out"
    if completed.returncode == 0:
        return None
    for line in completed.stdout.splitlines():
        if line.startswith("FAILED") or line.startswith("ERROR"):
            return line[:160]
    return f"{test_file} failed (exit {completed.returncode})"


def _evaluate_mutant(task: MutantTask) -> MutantVerdict:
    """Top-level worker entry point (picklable for the pool)."""
    state = _worker_state(task)
    mutant = task.mutant
    started = wall_clock()
    original = (Path(task.repo_root) / mutant.path).read_text(
        encoding="utf-8"
    )
    mutated_source = mutant.apply(original)

    def verdict(status: str, tier: str, detail: str) -> MutantVerdict:
        return MutantVerdict(
            mutant_id=mutant.mutant_id,
            operator=mutant.operator,
            path=mutant.path,
            qualname=mutant.qualname,
            description=mutant.description,
            lineno=mutant.lineno,
            status=status,
            tier=tier,
            detail=detail,
            seconds=wall_clock() - started,
        )

    if "lint" in task.tiers:
        detail = _lint_tier(task, mutated_source, state)
        if detail is not None:
            return verdict("killed", "lint", detail)

    needs_probe = "sanitizer" in task.tiers or "golden" in task.tiers
    shadow: ShadowTree = state["shadow"]
    try:
        if needs_probe or "tests" in task.tiers:
            shadow.mutate(mutant.path, mutated_source)
        if needs_probe:
            hit = _probe_tier(task, state)
            if hit is not None:
                tier, detail = hit
                return verdict("killed", tier, detail)
        if "tests" in task.tiers:
            detail = _tests_tier(task, state)
            if detail is not None:
                return verdict("killed", "tests", detail)
    finally:
        shadow.restore()
    return verdict("survived", "", "outlived every tier")


# -- the engine --------------------------------------------------------------


def _tree_sha(index: SemanticIndex) -> str:
    digest = hashlib.sha256()
    for path in sorted(index.modules):
        digest.update(path.encode())
        digest.update(index.modules[path].sha.encode())
    return digest.hexdigest()[:16]


def _config_sig() -> str:
    probe_src = (Path(__file__).parent / "probe.py").read_bytes()
    basis = (
        f"engine={ENGINE_VERSION}:catalog={CATALOG_VERSION}:"
        f"probe={hashlib.sha256(probe_src).hexdigest()[:12]}"
    )
    return hashlib.sha256(basis.encode()).hexdigest()[:12]


class VerdictCache:
    """Content-addressed verdict store on ``(file sha, mutant id)``."""

    def __init__(self, path: Path | None):
        self.path = path
        self.sig = _config_sig()
        self.baselines: dict[str, list[Any]] = {}
        self.verdicts: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        if path is not None and path.exists():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                data = {}
            if (
                isinstance(data, dict)
                and data.get("config_sig") == self.sig
            ):
                self.baselines = dict(data.get("baselines", {}))
                self.verdicts = dict(data.get("verdicts", {}))

    @staticmethod
    def key(file_sha: str, mutant_id: str) -> str:
        return f"{file_sha[:12]}:{mutant_id}"

    def lookup(self, file_sha: str, mutant_id: str) -> MutantVerdict | None:
        entry = self.verdicts.get(self.key(file_sha, mutant_id))
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return replace(MutantVerdict.from_dict(entry), cached=True)

    def store(self, file_sha: str, verdict: MutantVerdict) -> None:
        self.verdicts[self.key(file_sha, verdict.mutant_id)] = (
            verdict.to_dict()
        )

    def save(self) -> None:
        if self.path is None:
            return
        payload = {
            "config_sig": self.sig,
            "baselines": self.baselines,
            "verdicts": dict(sorted(self.verdicts.items())),
        }
        try:
            self.path.write_text(
                json.dumps(payload, sort_keys=True), encoding="utf-8"
            )
        except OSError:
            pass  # best-effort, like the lint index cache


class BaselineError(RuntimeError):
    """The *clean* tree failed the probe — nothing can be scored."""


class MutationEngine:
    """Coordinates enumeration, generation, fan-out, and caching."""

    def __init__(
        self,
        repo_root: Path | str = ".",
        src_root: str = "src",
        *,
        cache_path: Path | None = DEFAULT_CACHE,
        jobs: int | None = None,
        probe_timeout: float = 120.0,
        pytest_timeout: float = 300.0,
        tiers: tuple[str, ...] = TIERS,
        operators: tuple[MutationOperator, ...] = OPERATORS,
    ) -> None:
        self.repo_root = Path(repo_root).resolve()
        self.src_root = src_root
        self.cache = VerdictCache(
            self.repo_root / cache_path if cache_path else None
        )
        self.jobs = jobs
        self.probe_timeout = probe_timeout
        self.pytest_timeout = pytest_timeout
        self.tiers = tiers
        self.operators = operators

    def baseline_fingerprint(self, index: SemanticIndex) -> tuple[Any, ...]:
        """The clean tree's probe fingerprint (cached by tree sha)."""
        tree_sha = _tree_sha(index)
        cached = self.cache.baselines.get(tree_sha)
        if cached is not None:
            return tuple(
                tuple(p) if isinstance(p, list) else p for p in cached
            )
        completed = subprocess.run(
            [sys.executable, "-m", "repro.mutate.probe"],
            cwd=self.repo_root,
            env=_probe_env(self.repo_root / self.src_root),
            capture_output=True,
            text=True,
            timeout=self.probe_timeout,
        )
        try:
            payload = json.loads(completed.stdout)
        except json.JSONDecodeError as exc:
            raise BaselineError(
                f"clean probe produced no JSON: {completed.stderr[-200:]}"
            ) from exc
        if not payload.get("ok", False):
            raise BaselineError(
                f"clean probe raised: {payload.get('error', '?')}"
            )
        if payload.get("violations"):
            raise BaselineError(
                "clean tree has invariant violations; fix those before "
                "measuring mutation adequacy"
            )
        fingerprint = payload["fingerprint"]
        self.cache.baselines[tree_sha] = fingerprint
        return tuple(
            tuple(p) if isinstance(p, list) else p for p in fingerprint
        )

    def collect_mutants(
        self,
        packages: tuple[str, ...] = TARGET_PACKAGES,
        *,
        only_files: Iterable[str] | None = None,
        max_mutants: int | None = None,
    ) -> tuple[SemanticIndex, list[Mutant], dict[str, str], int]:
        """(index, mutants, file shas, n_sites) for one run's scope."""
        index = build_site_index(self.repo_root / self.src_root)
        # Re-key display paths repo-relative so shadow paths line up.
        rel_modules = {}
        for display_path, summary in index.modules.items():
            rel = Path(display_path)
            if rel.is_absolute():
                rel = rel.relative_to(self.repo_root)
            rel_modules[rel.as_posix()] = replace(
                summary, display_path=rel.as_posix()
            )
        index = SemanticIndex(modules=rel_modules)
        sites = enumerate_sites(index, packages)

        wanted = None
        if only_files is not None:
            wanted = {Path(f).as_posix() for f in only_files}

        mutants: list[Mutant] = []
        file_shas: dict[str, str] = {}
        for display_path in sorted(sites.files):
            if wanted is not None and display_path not in wanted:
                continue
            source = (self.repo_root / display_path).read_text(
                encoding="utf-8"
            )
            file_shas[display_path] = content_sha(source)
            mutants.extend(
                generate_mutants(
                    display_path,
                    source,
                    set(sites.files[display_path]),
                    self.operators,
                )
            )
        if max_mutants is not None:
            mutants = mutants[:max_mutants]
        return index, mutants, file_shas, sites.n_sites

    def run(
        self,
        packages: tuple[str, ...] = TARGET_PACKAGES,
        *,
        only_files: Iterable[str] | None = None,
        max_mutants: int | None = None,
        progress: Callable[[int, int, MutantVerdict], None] | None = None,
    ) -> MutationRun:
        started = wall_clock()
        index, mutants, file_shas, n_sites = self.collect_mutants(
            packages, only_files=only_files, max_mutants=max_mutants
        )
        baseline = self.baseline_fingerprint(index)

        cached: dict[str, MutantVerdict] = {}
        todo: list[Mutant] = []
        for mutant in mutants:
            hit = self.cache.lookup(
                file_shas[mutant.path], mutant.mutant_id
            )
            if hit is not None:
                cached[mutant.mutant_id] = hit
            else:
                todo.append(mutant)

        tree_sha = _tree_sha(index)
        tasks = [
            MutantTask(
                mutant=mutant,
                repo_root=str(self.repo_root),
                src_root=self.src_root,
                tree_sha=tree_sha,
                baseline_fingerprint=baseline,
                probe_timeout=self.probe_timeout,
                pytest_timeout=self.pytest_timeout,
                tiers=self.tiers,
            )
            for mutant in todo
        ]
        fresh: list[MutantVerdict] = []
        if tasks:
            executor = SweepExecutor(self.jobs)
            fresh = executor.map_tasks(_evaluate_mutant, tasks, progress)
        for verdict in fresh:
            self.cache.store(file_shas[verdict.path], verdict)
        self.cache.save()

        by_id = dict(cached)
        by_id.update({v.mutant_id: v for v in fresh})
        verdicts = [by_id[m.mutant_id] for m in mutants]
        return MutationRun(
            verdicts=verdicts,
            n_files=len(file_shas),
            n_sites=n_sites,
            cache_hits=self.cache.hits,
            cache_misses=self.cache.misses,
            wall_seconds=wall_clock() - started,
            baseline_fingerprint=baseline,
        )
