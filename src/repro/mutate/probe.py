"""Subprocess probe: one sanitized simulation + golden fingerprint.

Run as ``python -m repro.mutate.probe`` with ``PYTHONPATH`` pointing at
a (possibly mutated) shadow tree.  One short Bitcoin-NG run feeds two
kill tiers at once:

* **sanitizer** — the protocol adapter's full invariant-checker set in
  incremental mode; every :class:`ViolationRecord` comes back verbatim;
* **golden** — the same digest fingerprint the golden-equivalence suite
  pins (event/message/block counts, main-chain length, tip set, and a
  truncated sha over every node's state digest), compared against the
  clean tree's baseline by the engine.

The probe prints exactly one JSON object on stdout and exits 0 even
when violations fired — a non-zero exit (or garbage on stdout) means
the *mutant crashed the simulation*, which the engine scores as a
golden-tier kill in its own right.  Importing mutated code can fail in
arbitrary ways, so everything after arg parsing runs under one broad
try/except that still reports JSON.
"""

from __future__ import annotations

import hashlib
import json
import sys
import traceback


def run_probe() -> dict:
    """Execute the probe simulation; JSON-ready verdict payload."""
    from repro.experiments import ExperimentConfig, run_experiment
    from repro.experiments.instrumentation import adapter_checkers
    from repro.protocols import Protocol, get_adapter
    from repro.sanitizer.runtime import SanitizerRuntime

    config = ExperimentConfig(
        protocol=Protocol.BITCOIN_NG,
        n_nodes=10,
        seed=11,
        target_blocks=30,
        target_key_blocks=5,
        block_rate=0.2,
        # Fast key blocks: the main chain must keep several of them with
        # microblock runs in between, or no epoch with fees behind it
        # ever closes and the remuneration path computes nothing.
        key_block_rate=0.05,
        block_size_bytes=8_000,
        # Nonzero, odd-valued fees: the 40%/60% split and its rounding
        # dust are live in every coinbase, so fee-split mutants perturb
        # block hashes (golden) or trip INV102 (sanitizer).  Zero fees
        # — the paper's testbed setting — would leave that whole
        # mechanism invisible to the probe.
        fee_per_tx=7,
        cooldown=15.0,
    )
    adapter = get_adapter(config.protocol)
    runtime = SanitizerRuntime(
        adapter_checkers(adapter, "incremental"),
        stride=16,
        mode="incremental",
        digest_stride=10**9,
    )
    result, _log = run_experiment(config, sanitizer=runtime)
    runtime.finalize()
    snapshot = runtime.digests[-1]
    state = hashlib.sha256()
    for digest in snapshot.digests:
        state.update(digest.format().encode())
    tips = sorted({digest.tip for digest in snapshot.digests})
    return {
        "ok": True,
        "violations": [
            {"code": v.code, "name": v.name, "message": v.message}
            for v in runtime.violations
        ],
        "fingerprint": [
            result.events_processed,
            result.messages_delivered,
            result.blocks_generated,
            result.main_chain_length,
            tips,
            state.hexdigest()[:16],
        ],
    }


def main() -> int:
    try:
        payload = run_probe()
    except BaseException:  # noqa: BLE001 - mutants fail arbitrarily
        payload = {
            "ok": False,
            "error": traceback.format_exc(limit=5),
        }
    json.dump(payload, sys.stdout, sort_keys=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
