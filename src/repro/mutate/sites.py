"""Mutation-site enumeration via the semantic lint index.

"Consensus-critical" is a reachability question, and the PR 9 semantic
index already holds the project call graph — so the site enumerator
asks it instead of re-deriving anything:

1. **Adapter surfaces.**  Every method of every scanned class extending
   ``ProtocolAdapter`` is a root: the experiment runner drives protocol
   behaviour exclusively through those surfaces.
2. **Reachability closure.**  :meth:`SemanticIndex.reachable_functions`
   walks resolved call edges from the roots — with the instantiate
   closure, so node/chain/mempool objects built inside ``build_nodes``
   and then dispatched *by the simulator at runtime* still count.
3. **Versioned-class surfaces.**  Any method on a ``# repro:
   versioned`` class (or the built-in ``Mempool``/``UtxoSet`` set) is
   eligible even when the static walk misses it: the incremental
   sanitizer's correctness leans on those classes directly.
4. **Anchor modules.**  ``core/incentives.py``, ``core/remuneration.py``
   and ``ledger/validation.py`` are the paper's economic/validity core;
   they are eligible wholesale (including module-level constants, the
   ``<module>`` pseudo-qualname) even where the simulation never calls
   them — their mutants measure the *test* tier's adequacy.

Sites are then filtered to the consensus packages (``repro.core``,
``repro.ledger``, ``repro.crypto``, ``repro.mining``): mutating the
plotting helpers would only measure noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..lint.engine import _parse, build_semantic_index, collect_files
from ..lint.semantic.index import FunctionKey, SemanticIndex
from ..lint.semantic.rules import ADAPTER_BASES, VERSIONED_CLASS_NAMES

#: Packages whose functions may carry consensus-critical mutants.
TARGET_PACKAGES: tuple[str, ...] = (
    "repro.core",
    "repro.ledger",
    "repro.crypto",
    "repro.mining",
)

#: Modules eligible wholesale, by trailing path (see module docstring).
ANCHOR_SUFFIXES: tuple[str, ...] = (
    "repro/core/incentives.py",
    "repro/core/params.py",
    "repro/core/remuneration.py",
    "repro/ledger/validation.py",
)


@dataclass
class SiteMap:
    """Eligible mutation sites, grouped per source file."""

    #: display path → sorted qualnames (``Class.method`` / ``fn`` /
    #: ``<module>``) eligible for mutation in that file.
    files: dict[str, list[str]] = field(default_factory=dict)
    #: Why each file qualified (display path → sorted reason tags).
    reasons: dict[str, list[str]] = field(default_factory=dict)
    n_roots: int = 0
    n_reachable: int = 0

    @property
    def n_sites(self) -> int:
        return sum(len(names) for names in self.files.values())


def _module_of(index: SemanticIndex, display_path: str) -> str:
    summary = index.modules.get(display_path)
    return summary.module if summary is not None else ""


def _in_targets(module: str, packages: tuple[str, ...]) -> bool:
    return any(
        module == pkg or module.startswith(pkg + ".") for pkg in packages
    )


def _qualname(key: FunctionKey) -> str:
    if key.class_name:
        return f"{key.class_name}.{key.function}"
    return key.function


def build_site_index(root: Path) -> SemanticIndex:
    """The semantic index over every ``.py`` file under ``root``."""
    files = collect_files([root])
    return build_semantic_index([_parse(path) for path in files])


def enumerate_sites(
    index: SemanticIndex,
    packages: tuple[str, ...] = TARGET_PACKAGES,
) -> SiteMap:
    """All eligible mutation sites in ``index``, filtered to ``packages``."""
    sites = SiteMap()

    def admit(key: FunctionKey, reason: str) -> None:
        module = _module_of(index, key.display_path)
        if not _in_targets(module, packages):
            return
        names = sites.files.setdefault(key.display_path, [])
        qualname = _qualname(key)
        if qualname not in names:
            names.append(qualname)
        tags = sites.reasons.setdefault(key.display_path, [])
        if reason not in tags:
            tags.append(reason)

    roots: list[FunctionKey] = []
    for summary, cls in index.classes_extending(ADAPTER_BASES):
        roots.extend(index.class_surface(summary, cls))
    sites.n_roots = len(roots)

    reached = index.reachable_functions(roots)
    sites.n_reachable = len(reached)
    for key in sorted(
        reached, key=lambda k: (k.display_path, k.class_name or "", k.function)
    ):
        admit(key, "adapter-reachable")

    for summary, cls in index.versioned_classes(VERSIONED_CLASS_NAMES):
        for key in index.class_surface(summary, cls):
            admit(key, "versioned-class")

    for display_path in sorted(index.modules):
        if not display_path.endswith(ANCHOR_SUFFIXES):
            continue
        summary = index.modules[display_path]
        module = summary.module
        if not _in_targets(module, packages):
            continue
        admit(
            FunctionKey(display_path, None, "<module>"), "anchor-module"
        )
        for fn_name in sorted(summary.functions):
            admit(FunctionKey(display_path, None, fn_name), "anchor-module")
        for class_name in sorted(summary.classes):
            cls = summary.classes[class_name]
            for method_name in sorted(cls.methods):
                admit(
                    FunctionKey(display_path, class_name, method_name),
                    "anchor-module",
                )

    for path in sites.files:
        sites.files[path] = sorted(sites.files[path])
        sites.reasons[path] = sorted(sites.reasons[path])
    return sites
