"""The ``repro mutate`` subcommand family.

``repro mutate run``    — enumerate sites, generate mutants, drive the
                          tiered kill pipeline, write the JSON report.
``repro mutate report`` — render a saved report (kill matrix, scores,
                          survivors) without re-running anything.
``repro mutate diff``   — mutate only the source files changed versus a
                          git base ref (the PR-scoped CI job).

Exit codes: 0 clean (or gate satisfied), 1 gate failure (undocumented
survivors, or score below ``--min-score``), 2 usage errors.  Kept
separate from :mod:`repro.cli` so the engine imports only when invoked.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

from .engine import (
    DEFAULT_CACHE,
    DEFAULT_REPORT,
    TIERS,
    BaselineError,
    MutationEngine,
    MutationRun,
)
from .operators import OPERATORS_BY_NAME
from .report import gate, parse_allowlist, render_report
from .sites import TARGET_PACKAGES

ALLOWLIST_DOC = Path("docs") / "mutation.md"


def add_mutate_parser(commands: argparse._SubParsersAction) -> None:
    parser = commands.add_parser(
        "mutate",
        help="mutation-adequacy analysis of the checker stack",
        description=(
            "Plant consensus-critical defects (fee-split swaps, "
            "signature drops, off-by-ones, version-bump deletions) and "
            "measure which layer of the checker stack — lint, "
            "sanitizer, golden fingerprints, or tier-1 tests — catches "
            "each one. See docs/mutation.md for the operator catalog "
            "and survivor policy."
        ),
    )
    sub = parser.add_subparsers(dest="mutate_command", required=True)

    run_parser = sub.add_parser(
        "run", help="generate and evaluate mutants"
    )
    _add_run_arguments(run_parser)
    run_parser.set_defaults(handler=cmd_mutate_run, changed_only=False)

    report_parser = sub.add_parser(
        "report", help="render a saved mutation report"
    )
    report_parser.add_argument(
        "--in",
        dest="report_path",
        metavar="FILE",
        default=str(DEFAULT_REPORT),
        help=f"report JSON to render (default: {DEFAULT_REPORT})",
    )
    report_parser.add_argument(
        "--verbose", action="store_true", help="also list every kill"
    )
    report_parser.add_argument(
        "--gate",
        action="store_true",
        help="fail unless every survivor is catalogued in docs/mutation.md",
    )
    report_parser.set_defaults(handler=cmd_mutate_report)

    diff_parser = sub.add_parser(
        "diff", help="mutate only files changed versus a git base ref"
    )
    diff_parser.add_argument(
        "--base",
        metavar="REF",
        default="main",
        help="git ref to diff against (default: main)",
    )
    _add_run_arguments(diff_parser)
    diff_parser.set_defaults(handler=cmd_mutate_run, changed_only=True)


def _add_run_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "files",
        nargs="*",
        default=[],
        help="restrict to these source files (default: all eligible)",
    )
    parser.add_argument(
        "--package",
        action="append",
        default=None,
        metavar="PKG",
        help=(
            "restrict to a dotted package prefix (repeatable; default: "
            + ", ".join(TARGET_PACKAGES)
            + ")"
        ),
    )
    parser.add_argument(
        "--operators",
        metavar="OP[,OP]",
        default=None,
        help=(
            "restrict to these operators (choose from "
            + ", ".join(sorted(OPERATORS_BY_NAME))
            + ")"
        ),
    )
    parser.add_argument(
        "--max-mutants",
        type=int,
        default=None,
        metavar="N",
        help="evaluate at most N mutants (deterministic prefix)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: REPRO_JOBS or CPU count)",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        default=str(DEFAULT_CACHE),
        help=f"verdict cache (default: {DEFAULT_CACHE}; 'none' disables)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=str(DEFAULT_REPORT),
        help=f"write the JSON report here (default: {DEFAULT_REPORT})",
    )
    parser.add_argument(
        "--tiers",
        metavar="TIER[,TIER]",
        default=None,
        help="run only these kill tiers (choose from " + ", ".join(TIERS) + ")",
    )
    parser.add_argument(
        "--min-score",
        type=float,
        default=None,
        metavar="S",
        help="fail (exit 1) when the kill rate drops below S (0..1)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="fail unless every survivor is catalogued in docs/mutation.md",
    )
    parser.add_argument(
        "--json", action="store_true", help="print the report as JSON"
    )
    parser.add_argument(
        "--verbose", action="store_true", help="also list every kill"
    )


def _changed_files(base: str) -> list[str]:
    """Source files changed versus ``base`` (the PR-scoped CI scope)."""
    completed = subprocess.run(
        ["git", "diff", "--name-only", base, "--", "src"],
        capture_output=True,
        text=True,
        check=True,
    )
    return [
        line.strip()
        for line in completed.stdout.splitlines()
        if line.strip().endswith(".py")
    ]


def cmd_mutate_run(args: argparse.Namespace) -> int:
    only_files = list(args.files) or None
    if args.changed_only:
        try:
            changed = _changed_files(args.base)
        except (subprocess.CalledProcessError, OSError) as exc:
            print(f"error: git diff against {args.base!r} failed: {exc}",
                  file=sys.stderr)
            return 2
        if not changed:
            print(f"no source files changed versus {args.base}; "
                  "nothing to mutate")
            return 0
        only_files = changed if only_files is None else [
            f for f in only_files if f in set(changed)
        ]

    operators = None
    if args.operators:
        names = [n.strip() for n in args.operators.split(",") if n.strip()]
        unknown = [n for n in names if n not in OPERATORS_BY_NAME]
        if unknown:
            print(f"error: unknown operator(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        operators = tuple(OPERATORS_BY_NAME[n] for n in names)

    tiers = TIERS
    if args.tiers:
        names = [n.strip() for n in args.tiers.split(",") if n.strip()]
        unknown = [n for n in names if n not in TIERS]
        if unknown:
            print(f"error: unknown tier(s): {', '.join(unknown)}",
                  file=sys.stderr)
            return 2
        tiers = tuple(t for t in TIERS if t in names)

    packages = TARGET_PACKAGES
    if args.package:
        packages = tuple(args.package)

    cache_path = None if args.cache == "none" else Path(args.cache)
    engine_kwargs = dict(
        cache_path=cache_path, jobs=args.jobs, tiers=tiers
    )
    if operators is not None:
        engine_kwargs["operators"] = operators
    engine = MutationEngine(".", **engine_kwargs)

    def progress(index: int, total: int, verdict) -> None:
        label = verdict.tier if verdict.status == "killed" else "SURVIVED"
        print(
            f"[{index + 1:4d}/{total}] {label:9s} {verdict.mutant_id}",
            file=sys.stderr,
        )

    try:
        run = engine.run(
            packages,
            only_files=only_files,
            max_mutants=args.max_mutants,
            progress=progress if args.verbose else None,
        )
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.out and args.out != "none":
        Path(args.out).write_text(
            json.dumps(run.to_dict(), indent=2, sort_keys=True),
            encoding="utf-8",
        )

    if args.json:
        print(json.dumps(run.to_dict(), indent=2, sort_keys=True))
    else:
        print(render_report(run, verbose=args.verbose))

    exit_code = 0
    if args.min_score is not None and run.score < args.min_score:
        print(
            f"mutation score {run.score:.1%} below required "
            f"{args.min_score:.1%}",
            file=sys.stderr,
        )
        exit_code = 1
    if args.gate:
        ok, message = gate(run, parse_allowlist(ALLOWLIST_DOC))
        print(message, file=sys.stderr)
        if not ok:
            exit_code = 1
    return exit_code


def cmd_mutate_report(args: argparse.Namespace) -> int:
    path = Path(args.report_path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read report {path}: {exc}", file=sys.stderr)
        return 2
    run = MutationRun.from_dict(data)
    print(render_report(run, verbose=args.verbose))
    if args.gate:
        ok, message = gate(run, parse_allowlist(ALLOWLIST_DOC))
        print(message, file=sys.stderr)
        if not ok:
            return 1
    return 0
