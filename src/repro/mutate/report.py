"""Kill-matrix reporting and the surviving-mutant allowlist gate.

The matrix answers the question the tentpole exists for: *which checker
layer actually catches which class of planted defect?*  Rows are
mutation operators, columns are kill tiers, cells count kills — a row
whose mass sits in ``tests`` names a defect class the static/dynamic
layers are blind to, which is exactly where the next NG rule or INV
checker should land.

Survivor policy: a mutant that outlives every tier must either grow a
rule that kills it or be catalogued in ``docs/mutation.md`` with its
backtick-quoted mutant id and a rationale.  :func:`parse_allowlist`
scrapes those ids; :func:`gate` fails when an undocumented survivor
exists — the CI contract that keeps the mutation score honest.
"""

from __future__ import annotations

import re
from collections import defaultdict
from pathlib import Path
from typing import Any

from .engine import TIERS, MutationRun, MutantVerdict

#: Mutant ids as they appear in docs: `operator:path:qualname:sha8`.
_ALLOWLIST_RE = re.compile(r"`([a-z-]+:[^`\s]+:[0-9a-f]{8})`")


def kill_matrix(run: MutationRun) -> dict[str, dict[str, int]]:
    """operator → {tier: kills, "survived": n, "total": n}."""
    matrix: dict[str, dict[str, int]] = defaultdict(
        lambda: {tier: 0 for tier in TIERS} | {"survived": 0, "total": 0}
    )
    for verdict in run.verdicts:
        row = matrix[verdict.operator]
        row["total"] += 1
        if verdict.status == "killed":
            row[verdict.tier] += 1
        else:
            row["survived"] += 1
    return {op: dict(matrix[op]) for op in sorted(matrix)}


def module_scores(run: MutationRun) -> dict[str, dict[str, Any]]:
    """path → {total, killed, score} per mutated source file."""
    counts: dict[str, dict[str, int]] = defaultdict(
        lambda: {"total": 0, "killed": 0}
    )
    for verdict in run.verdicts:
        counts[verdict.path]["total"] += 1
        if verdict.status == "killed":
            counts[verdict.path]["killed"] += 1
    return {
        path: {
            "total": c["total"],
            "killed": c["killed"],
            "score": round(c["killed"] / c["total"], 4) if c["total"] else 1.0,
        }
        for path, c in sorted(counts.items())
    }


def parse_allowlist(doc: Path) -> set[str]:
    """Backtick-quoted mutant ids catalogued in ``docs/mutation.md``."""
    try:
        text = doc.read_text(encoding="utf-8")
    except OSError:
        return set()
    return set(_ALLOWLIST_RE.findall(text))


def undocumented_survivors(
    run: MutationRun, allowlist: set[str]
) -> list[MutantVerdict]:
    return [v for v in run.survivors if v.mutant_id not in allowlist]


def gate(run: MutationRun, allowlist: set[str]) -> tuple[bool, str]:
    """(ok, message) for the CI contract."""
    missing = undocumented_survivors(run, allowlist)
    if not missing:
        return True, (
            f"mutation gate: {len(run.killed)}/{len(run.verdicts)} killed, "
            f"{len(run.survivors)} survivor(s) all catalogued"
        )
    lines = [
        f"mutation gate: {len(missing)} surviving mutant(s) not catalogued "
        "in docs/mutation.md — kill each with a new rule/invariant or "
        "document it with a rationale:"
    ]
    lines += [
        f"  {v.mutant_id}  ({v.description})" for v in missing
    ]
    return False, "\n".join(lines)


def render_report(run: MutationRun, *, verbose: bool = False) -> str:
    """Human-readable kill matrix + per-module scores + survivors."""
    out: list[str] = []
    out.append(
        f"mutation run: {len(run.verdicts)} mutants over {run.n_files} "
        f"file(s), {run.n_sites} site(s)"
    )
    out.append(
        f"score: {run.score:.1%} killed "
        f"({len(run.killed)} killed / {len(run.survivors)} survived), "
        f"cache {run.cache_hits} hit(s) / {run.cache_misses} miss(es), "
        f"wall {run.wall_seconds:.1f}s"
    )
    out.append("")

    matrix = kill_matrix(run)
    header = ["operator"] + list(TIERS) + ["survived", "total"]
    widths = [max(len(header[0]), *(len(op) for op in matrix or ["-"]))]
    widths += [max(8, len(h)) for h in header[1:]]
    out.append(
        "  ".join(h.ljust(w) for h, w in zip(header, widths))
    )
    out.append("  ".join("-" * w for w in widths))
    for op, row in matrix.items():
        cells = [op] + [
            str(row[col]) for col in header[1:]
        ]
        out.append(
            "  ".join(c.ljust(w) for c, w in zip(cells, widths))
        )
    out.append("")

    out.append("per-module mutation score:")
    for path, entry in module_scores(run).items():
        out.append(
            f"  {path:45s} {entry['killed']:3d}/{entry['total']:3d}"
            f"  {entry['score']:.1%}"
        )

    if run.survivors:
        out.append("")
        out.append(f"survivors ({len(run.survivors)}):")
        for v in run.survivors:
            out.append(f"  {v.mutant_id}")
            out.append(f"    {v.description} (line {v.lineno})")
    if verbose:
        out.append("")
        out.append("kills:")
        for v in run.killed:
            out.append(
                f"  [{v.tier:9s}] {v.mutant_id}: {v.detail[:100]}"
            )
    return "\n".join(out)


def bench_section(run: MutationRun) -> dict[str, Any]:
    """The ``mutation`` section for ``BENCH_simcore.json``."""
    matrix = kill_matrix(run)
    tier_totals = {
        tier: sum(row[tier] for row in matrix.values()) for tier in TIERS
    }
    return {
        "n_mutants": len(run.verdicts),
        "n_killed": len(run.killed),
        "n_survived": len(run.survivors),
        "score": round(run.score, 4),
        "kills_by_tier": tier_totals,
        "n_files": run.n_files,
        "n_sites": run.n_sites,
    }
