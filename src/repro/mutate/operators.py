"""NG-aware AST mutation operators.

Each operator walks a module's AST, restricted to the consensus-critical
functions the site enumerator selected, and emits :class:`Mutant`
records: surgical *text-span* patches (never ``ast.unparse``, which
would strip the ``# repro: versioned`` markers and inline suppressions
the lint tier keys on).  The catalog mirrors the exact mechanisms
Bitcoin-NG's security argument rests on:

=============  ==============================================================
operator       paper mechanism it perturbs
=============  ==============================================================
arith-swap     fee-split arithmetic (40/60 remuneration, Section 4.3)
cmp-flip       fork choice, coinbase maturity, validity boundaries
frac-swap      fee-split / bound constants (0.4 → 0.6, Section 4.3 & 5)
sig-drop       microblock / input signature verification (Section 4.2)
cond-neg       validity guards (poison checks, leader checks)
bump-del       ``.version`` bump discipline the incremental sanitizer trusts
rng-swap       named RNG stream provenance (determinism discipline)
int-shift      off-by-one on protocol constants in comparisons/returns
=============  ==============================================================

A mutant's identity is line-number-free — ``operator:path:qualname:sha8``
over the ``original → replacement`` text plus an AST-order ordinal — so
verdict caches and the survivor allowlist in ``docs/mutation.md``
survive unrelated refactors of the same file.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Iterator

from ..lint.semantic.extract import rng_stream_tag

#: Bump when operator semantics change: stale cached verdicts for an
#: older catalog must not be trusted.
CATALOG_VERSION = 2

#: Call names whose verdict gates signature acceptance.
_VERIFY_NAMES = frozenset(
    {"verify", "verify_signature", "verify_input_signatures"}
)

#: Statements the bump-delete operator removes.
_BUMP_TEXT = "self.version"


@dataclass(frozen=True)
class Mutant:
    """One candidate defect: a text-span patch against a source file."""

    operator: str
    path: str  #: repo-relative posix path of the mutated file
    qualname: str  #: ``Class.method``, ``function``, or ``<module>``
    description: str
    original: str  #: replaced source text
    replacement: str
    start: int  #: absolute character offset of the span
    end: int
    lineno: int  #: 1-based line of the span (display only)
    ordinal: int = 0  #: disambiguates identical patches in one function

    @property
    def mutant_id(self) -> str:
        """Stable, line-free identity for caches and allowlists."""
        basis = (
            f"{self.original}→{self.replacement}:{self.ordinal}"
        )
        digest = hashlib.sha256(basis.encode("utf-8")).hexdigest()[:8]
        return f"{self.operator}:{self.path}:{self.qualname}:{digest}"

    def apply(self, source: str) -> str:
        """The mutated module source."""
        assert source[self.start : self.end] == self.original, self.mutant_id
        return source[: self.start] + self.replacement + source[self.end :]


# -- span helpers ------------------------------------------------------------


def _line_offsets(source: str) -> list[int]:
    """Absolute offset of each line start (1-based access via index-1)."""
    offsets = [0]
    for line in source.splitlines(keepends=True):
        offsets.append(offsets[-1] + len(line))
    return offsets

class _Span:
    """Absolute-offset conversion for AST node positions."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.offsets = _line_offsets(source)

    def start(self, node: ast.AST) -> int:
        return self.offsets[node.lineno - 1] + node.col_offset

    def end(self, node: ast.AST) -> int:
        assert node.end_lineno is not None and node.end_col_offset is not None
        return self.offsets[node.end_lineno - 1] + node.end_col_offset

    def text(self, node: ast.AST) -> str:
        return self.source[self.start(node) : self.end(node)]

    def find_token(
        self, lo: int, hi: int, tokens: tuple[str, ...]
    ) -> tuple[int, str] | None:
        """First occurrence of any token (longest match wins) in a gap."""
        gap = self.source[lo:hi]
        best: tuple[int, str] | None = None
        for token in sorted(tokens, key=len, reverse=True):
            at = gap.find(token)
            if at < 0:
                continue
            if best is None or at < best[0]:
                # Longest tokens are tried first, so "<=" beats "<" at
                # the same position.
                if best is None or at != best[0]:
                    best = (at, token)
        if best is None:
            return None
        return lo + best[0], best[1]


@dataclass
class _FunctionScope:
    """One eligible function body plus the walk bookkeeping."""

    qualname: str
    node: ast.AST  #: FunctionDef or the Module for ``<module>``
    statements: list[ast.stmt] = field(default_factory=list)


def _eligible_scopes(
    tree: ast.Module, qualnames: set[str]
) -> Iterator[_FunctionScope]:
    """Eligible function bodies, in AST (deterministic) order.

    ``<module>`` selects top-level simple statements plus class-level
    attribute defaults — the anchor-module constants the catalog
    targets, like ``NGParams.leader_fee_fraction = 0.40``.
    """
    if "<module>" in qualnames:
        statements = [
            stmt
            for stmt in tree.body
            if isinstance(stmt, (ast.Assign, ast.AnnAssign))
        ]
        for node in tree.body:
            if isinstance(node, ast.ClassDef):
                statements.extend(
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign))
                )
        yield _FunctionScope("<module>", tree, statements)
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if node.name in qualnames:
                yield _FunctionScope(node.name, node, list(node.body))
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{node.name}.{item.name}"
                    if qualname in qualnames:
                        yield _FunctionScope(qualname, item, list(item.body))


def _walk_scope(scope: _FunctionScope) -> Iterator[ast.AST]:
    for stmt in scope.statements:
        yield from ast.walk(stmt)


def _parents(scope: _FunctionScope) -> dict[int, ast.AST]:
    parents: dict[int, ast.AST] = {}
    for stmt in scope.statements:
        for node in ast.walk(stmt):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        parents.setdefault(id(stmt), scope.node)
    return parents


class MutationOperator:
    """One mutation strategy over eligible scopes of a module."""

    name: str = ""
    description: str = ""

    def mutate(
        self, path: str, source: str, tree: ast.Module, qualnames: set[str]
    ) -> list[Mutant]:
        span = _Span(source)
        mutants: list[Mutant] = []
        # Keyed "qualname|original|replacement" (flat strings, so the
        # NG303 identifier harvest never mistakes this bookkeeping dict
        # for hot-path simulation state).
        patch_ordinals: dict[str, int] = {}
        for scope in _eligible_scopes(tree, qualnames):
            for original, replacement, start, end, lineno, detail in (
                self.candidates(scope, span)
            ):
                key = f"{scope.qualname}|{original}|{replacement}"
                ordinal = patch_ordinals.get(key, 0)
                patch_ordinals[key] = ordinal + 1
                mutants.append(
                    Mutant(
                        operator=self.name,
                        path=path,
                        qualname=scope.qualname,
                        description=detail,
                        original=original,
                        replacement=replacement,
                        start=start,
                        end=end,
                        lineno=lineno,
                        ordinal=ordinal,
                    )
                )
        return mutants

    def candidates(
        self, scope: _FunctionScope, span: _Span
    ) -> Iterator[tuple[str, str, int, int, int, str]]:
        """Yield ``(original, replacement, start, end, lineno, detail)``."""
        raise NotImplementedError


class ArithOpSwap(MutationOperator):
    """``+`` ↔ ``-`` in consensus arithmetic (fee splits, weights)."""

    name = "arith-swap"
    description = (
        "swap + and - in eligible arithmetic; perturbs fee splits, "
        "reward sums, and chain-weight accumulation"
    )

    _SWAP = {"+": "-", "-": "+"}

    def candidates(self, scope, span):
        for node in _walk_scope(scope):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                found = span.find_token(
                    span.end(node.left), span.start(node.right), ("+", "-")
                )
                if found is None:
                    continue
                at, token = found
                yield (
                    token,
                    self._SWAP[token],
                    at,
                    at + len(token),
                    node.lineno,
                    f"`{token}` → `{self._SWAP[token]}` in "
                    f"`{span.text(node)}`",
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                target = span.text(node.target)
                if _BUMP_TEXT in target:
                    continue  # bump-del owns `.version` statements
                found = span.find_token(
                    span.end(node.target),
                    span.start(node.value),
                    ("+=", "-="),
                )
                if found is None:
                    continue
                at, token = found
                swapped = "-=" if token == "+=" else "+="
                yield (
                    token,
                    swapped,
                    at,
                    at + len(token),
                    node.lineno,
                    f"`{token}` → `{swapped}` on `{target}`",
                )


class CmpFlip(MutationOperator):
    """Boundary/ordering flips: ``<``↔``<=``, ``>``↔``>=``, ``==``↔``!=``."""

    name = "cmp-flip"
    description = (
        "flip comparison operators; perturbs fork choice, coinbase "
        "maturity, and validity boundaries by exactly one unit"
    )

    _SWAP = {
        "<=": "<", "<": "<=", ">=": ">", ">": ">=", "==": "!=", "!=": "==",
    }

    def candidates(self, scope, span):
        for node in _walk_scope(scope):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            if not isinstance(
                node.ops[0], (ast.Lt, ast.LtE, ast.Gt, ast.GtE,
                              ast.Eq, ast.NotEq)
            ):
                continue
            found = span.find_token(
                span.end(node.left),
                span.start(node.comparators[0]),
                ("<=", ">=", "==", "!=", "<", ">"),
            )
            if found is None:
                continue
            at, token = found
            yield (
                token,
                self._SWAP[token],
                at,
                at + len(token),
                node.lineno,
                f"`{token}` → `{self._SWAP[token]}` in `{span.text(node)}`",
            )


class FractionComplement(MutationOperator):
    """Unit-interval constants ``c`` → ``1 - c`` (fee-split fractions)."""

    name = "frac-swap"
    description = (
        "replace a fraction constant c in (0, 1) with its complement "
        "1 - c; the 40/60 fee split becomes 60/40"
    )

    def candidates(self, scope, span):
        for node in _walk_scope(scope):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, float)
                # Split-style fractions only.  Tiny constants are float
                # epsilons, not fractions — complementing 1e-9 into
                # 0.999999999 measures nothing about fee splits — and
                # 0.5 is its own complement (an equivalent mutant).
                and 0.01 <= node.value <= 0.99
                and node.value != 0.5
            ):
                flipped = repr(round(1.0 - node.value, 12))
                original = span.text(node)
                yield (
                    original,
                    flipped,
                    span.start(node),
                    span.end(node),
                    node.lineno,
                    f"fraction `{original}` → `{flipped}`",
                )


class SigVerifyDrop(MutationOperator):
    """Replace a signature-verification call's verdict with ``True``."""

    name = "sig-drop"
    description = (
        "force signature verification to succeed (and, separately, "
        "invert it); models the forged-microblock acceptance bug"
    )

    def candidates(self, scope, span):
        parents = _parents(scope)
        for node in _walk_scope(scope):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else None
            )
            if attr not in _VERIFY_NAMES:
                continue
            parent = parents.get(id(node))
            if isinstance(parent, ast.Expr):
                continue  # bare statement call: verdict unused
            original = span.text(node)
            start, end = span.start(node), span.end(node)
            yield (
                original,
                "True",
                start,
                end,
                node.lineno,
                f"`{attr}(...)` verdict forced True",
            )
            yield (
                original,
                f"(not {original})",
                start,
                end,
                node.lineno,
                f"`{attr}(...)` verdict inverted",
            )


class CondNegate(MutationOperator):
    """Invert ``if`` guards in consensus code paths."""

    name = "cond-neg"
    description = (
        "negate an if-condition; validity guards accept what they "
        "rejected and vice versa"
    )

    def candidates(self, scope, span):
        for node in _walk_scope(scope):
            if not isinstance(node, ast.If):
                continue
            test = node.test
            original = span.text(test)
            if "\n" in original:
                continue  # keep patches single-line for readable diffs
            yield (
                original,
                f"not ({original})",
                span.start(test),
                span.end(test),
                test.lineno,
                f"guard `{original}` negated",
            )


class BumpDelete(MutationOperator):
    """Delete a ``self.version += 1`` bump (the NG601 hazard, planted)."""

    name = "bump-del"
    description = (
        "remove a .version bump; the incremental sanitizer's dirty-set "
        "tracker goes blind to the write (must die in the lint tier)"
    )

    def candidates(self, scope, span):
        for node in _walk_scope(scope):
            if not isinstance(node, ast.AugAssign):
                continue
            target = node.target
            if not (
                isinstance(target, ast.Attribute)
                and target.attr == "version"
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            original = span.text(node)
            yield (
                original,
                "pass",
                span.start(node),
                span.end(node),
                node.lineno,
                f"`{original}` deleted",
            )


class RngStreamSwap(MutationOperator):
    """Swap a named RNG stream for a sibling stream in the same module."""

    name = "rng-swap"
    description = (
        "read from the wrong named RNG stream; one extra draw anywhere "
        "reshuffles every downstream stream (must die via NG604 or the "
        "golden fingerprint)"
    )

    def mutate(self, path, source, tree, qualnames):
        # Streams available in this module, for cross-wiring.
        streams: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Name):
                tag = rng_stream_tag(node.id)
                if tag is not None:
                    streams.setdefault(tag, node.id)
        self._streams = streams
        return super().mutate(path, source, tree, qualnames)

    def candidates(self, scope, span):
        streams = getattr(self, "_streams", {})
        if len(streams) < 2:
            return
        for node in _walk_scope(scope):
            if not isinstance(node, ast.Name):
                continue
            tag = rng_stream_tag(node.id)
            if tag is None:
                continue
            for other_tag in sorted(streams):
                if other_tag == tag:
                    continue
                replacement = streams[other_tag]
                yield (
                    node.id,
                    replacement,
                    span.start(node),
                    span.end(node),
                    node.lineno,
                    f"stream `{node.id}` → `{replacement}`",
                )
                break  # one sibling per site keeps the count bounded


class IntShift(MutationOperator):
    """Off-by-one on integer constants at decision points."""

    name = "int-shift"
    description = (
        "bump an integer constant inside a comparison or return by one; "
        "classic off-by-one on maturity depths and size limits"
    )

    def candidates(self, scope, span):
        parents = _parents(scope)
        for node in _walk_scope(scope):
            if not (
                isinstance(node, ast.Constant)
                and isinstance(node.value, int)
                and not isinstance(node.value, bool)
            ):
                continue
            parent = parents.get(id(node))
            if not isinstance(parent, (ast.Compare, ast.Return)):
                continue
            original = span.text(node)
            yield (
                original,
                str(node.value + 1),
                span.start(node),
                span.end(node),
                node.lineno,
                f"`{original}` → `{node.value + 1}`",
            )


#: The shipped catalog, in deterministic application order.
OPERATORS: tuple[MutationOperator, ...] = (
    ArithOpSwap(),
    CmpFlip(),
    FractionComplement(),
    SigVerifyDrop(),
    CondNegate(),
    BumpDelete(),
    RngStreamSwap(),
    IntShift(),
)

OPERATORS_BY_NAME: dict[str, MutationOperator] = {
    op.name: op for op in OPERATORS
}


def generate_mutants(
    path: str,
    source: str,
    qualnames: set[str],
    operators: tuple[MutationOperator, ...] = OPERATORS,
) -> list[Mutant]:
    """Every catalog mutant for one file's eligible functions.

    Mutants whose patched module no longer parses are dropped here (an
    unparsable mutant would only measure Python's parser, not our
    checker stack).
    """
    tree = ast.parse(source)
    mutants: list[Mutant] = []
    for operator in operators:
        for mutant in operator.mutate(path, source, tree, qualnames):
            try:
                ast.parse(mutant.apply(source))
            except SyntaxError:
                continue
            mutants.append(mutant)
    return mutants
