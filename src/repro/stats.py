"""Small statistics helpers shared across the library.

Percentiles, least-squares fitting, and summary statistics used by the
metrics, the pool model, and the experiment harness.  Kept dependency-
free (no numpy) so the core library remains pure Python; the experiment
code may still use numpy for bulk work where it matters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def percentile(samples: Sequence[float], q: float, interpolate: bool = False) -> float:
    """The q-quantile of ``samples`` (0 <= q <= 1).

    By default uses the paper-style empirical percentile (the value at
    index floor(q·n), matching "the δ-percentile of all samples");
    ``interpolate`` selects linear interpolation instead.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 1:
        raise ValueError("quantile must be in [0, 1]")
    ordered = sorted(samples)
    if interpolate:
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction
    index = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[index]


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line y = slope·x + intercept with its R²."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares on (xs, ys)."""
    if len(xs) != len(ys):
        raise ValueError("x and y lengths differ")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    ss_xy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    ss_xx = sum((x - mean_x) ** 2 for x in xs)
    if ss_xx == 0:
        raise ValueError("x values are all identical")
    slope = ss_xy / ss_xx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return LinearFit(slope, intercept, r_squared)


def log_linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Fit log(y) = slope·x + intercept — exponential decay/growth."""
    if any(y <= 0 for y in ys):
        raise ValueError("log fit needs positive y values")
    return linear_fit(xs, [math.log(y) for y in ys])


@dataclass(frozen=True)
class Summary:
    """Mean, spread, and extremes of a sample set."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float


def summarize(samples: Iterable[float]) -> Summary:
    values = list(samples)
    if not values:
        raise ValueError("no samples")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return Summary(
        n=n,
        mean=mean,
        stdev=math.sqrt(variance),
        minimum=min(values),
        maximum=max(values),
    )
