"""Block wire formats: serialize/deserialize every block type.

The simulator passes Python objects between nodes, but the library also
provides full byte-level codecs so blocks can cross a real transport,
be persisted, or be diffed against fixtures.  Round-trips are exact:
``decode(encode(x)) == x`` and hashes are preserved.
"""

from __future__ import annotations

from .bitcoin.blocks import Block, BlockHeader, SyntheticPayload, TxPayload
from .core.blocks import (
    KeyBlock,
    KeyBlockHeader,
    Microblock,
    MicroblockHeader,
)
from .encoding import (
    ByteReader,
    DecodeError,
    bytes_u16,
    bytes_u32,
    f64,
    u8,
    u32,
    u64,
)
from .ledger.transactions import Transaction

# Payload type tags.
_TAG_SYNTHETIC = 0
_TAG_TRANSACTIONS = 1

# Block type tags (the object kind on the wire).
_TAG_BITCOIN_BLOCK = 10
_TAG_KEY_BLOCK = 11
_TAG_MICROBLOCK = 12


# -- payloads ------------------------------------------------------------


def encode_payload(payload: TxPayload | SyntheticPayload) -> bytes:
    if isinstance(payload, SyntheticPayload):
        return (
            u8(_TAG_SYNTHETIC)
            + u32(payload.n_tx)
            + u32(payload.tx_size)
            + bytes_u16(payload.salt)
        )
    parts = [u8(_TAG_TRANSACTIONS), u32(payload.n_tx)]
    parts.extend(bytes_u32(tx.serialize()) for tx in payload.transactions)
    return b"".join(parts)


def decode_payload(reader: ByteReader) -> TxPayload | SyntheticPayload:
    tag = reader.u8()
    if tag == _TAG_SYNTHETIC:
        n_tx = reader.u32()
        tx_size = reader.u32()
        salt = reader.bytes_u16()
        return SyntheticPayload(n_tx, tx_size, salt)
    if tag == _TAG_TRANSACTIONS:
        count = reader.u32()
        txs = tuple(
            Transaction.deserialize(reader.bytes_u32()) for _ in range(count)
        )
        return TxPayload(txs)
    raise DecodeError(f"unknown payload tag {tag}")


# -- Bitcoin blocks --------------------------------------------------------


def encode_block(block: Block) -> bytes:
    header = block.header
    return (
        u8(_TAG_BITCOIN_BLOCK)
        + header.prev_hash
        + header.payload_root
        + f64(header.timestamp)
        + u32(header.bits)
        + u64(header.nonce)
        + bytes_u32(block.coinbase.serialize())
        + encode_payload(block.payload)
    )


def _decode_block(reader: ByteReader) -> Block:
    prev_hash = reader.take(32)
    payload_root = reader.take(32)
    timestamp = reader.f64()
    bits = reader.u32()
    nonce = reader.u64()
    coinbase = Transaction.deserialize(reader.bytes_u32())
    payload = decode_payload(reader)
    header = BlockHeader(prev_hash, payload_root, timestamp, bits, nonce)
    return Block(header, coinbase, payload)


# -- NG key blocks -----------------------------------------------------------


def encode_key_block(block: KeyBlock) -> bytes:
    header = block.header
    return (
        u8(_TAG_KEY_BLOCK)
        + header.prev_hash
        + header.payload_root
        + f64(header.timestamp)
        + u32(header.bits)
        + u64(header.nonce)
        + header.leader_pubkey
        + bytes_u32(block.coinbase.serialize())
    )


def _decode_key_block(reader: ByteReader) -> KeyBlock:
    prev_hash = reader.take(32)
    payload_root = reader.take(32)
    timestamp = reader.f64()
    bits = reader.u32()
    nonce = reader.u64()
    leader_pubkey = reader.take(33)
    coinbase = Transaction.deserialize(reader.bytes_u32())
    header = KeyBlockHeader(
        prev_hash, payload_root, timestamp, bits, nonce, leader_pubkey
    )
    return KeyBlock(header, coinbase)


# -- NG microblocks ----------------------------------------------------------


def encode_microblock(micro: Microblock) -> bytes:
    header = micro.header
    return (
        u8(_TAG_MICROBLOCK)
        + header.prev_hash
        + f64(header.timestamp)
        + header.entries_root
        + micro.signature
        + encode_payload(micro.payload)
    )


def _decode_microblock(reader: ByteReader) -> Microblock:
    prev_hash = reader.take(32)
    timestamp = reader.f64()
    entries_root = reader.take(32)
    signature = reader.take(64)
    payload = decode_payload(reader)
    header = MicroblockHeader(prev_hash, timestamp, entries_root)
    return Microblock(header, signature, payload)


# -- generic entry point ------------------------------------------------------


def encode(block: Block | KeyBlock | Microblock) -> bytes:
    """Serialize any block type with its tag."""
    if isinstance(block, Block):
        return encode_block(block)
    if isinstance(block, KeyBlock):
        return encode_key_block(block)
    if isinstance(block, Microblock):
        return encode_microblock(block)
    raise DecodeError(f"cannot encode {type(block).__name__}")


def decode(data: bytes) -> Block | KeyBlock | Microblock:
    """Parse any tagged block; raises :class:`DecodeError` on garbage."""
    reader = ByteReader(data)
    tag = reader.u8()
    if tag == _TAG_BITCOIN_BLOCK:
        block: Block | KeyBlock | Microblock = _decode_block(reader)
    elif tag == _TAG_KEY_BLOCK:
        block = _decode_key_block(reader)
    elif tag == _TAG_MICROBLOCK:
        block = _decode_microblock(reader)
    else:
        raise DecodeError(f"unknown block tag {tag}")
    reader.expect_end()
    return block
