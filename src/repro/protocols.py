"""The protocol-adapter registry: one uniform surface per protocol.

Every consensus protocol the harness can run — Bitcoin, GHOST,
Bitcoin-NG, or anything registered later — is described by a
:class:`ProtocolAdapter`: how to build its nodes and mining scheduler
for an experiment, and how its nodes react to lifecycle faults (crash,
restart, resync).  The experiment runner and the fault-injection
scenario engine both work exclusively through this interface, so adding
a protocol requires registering an adapter — never editing the runner.

The :class:`Protocol` enum of the three built-in protocols lives here
(re-exported from :mod:`repro.experiments.config` for compatibility);
the registry itself is keyed by protocol *name*, so external protocols
can register under new names and be run by setting
``ExperimentConfig(protocol="<name>")``.
"""

from __future__ import annotations

import abc
import enum
from collections.abc import Sequence
from typing import TYPE_CHECKING, ClassVar

from .bitcoin.blocks import make_genesis
from .bitcoin.chain import TieBreak
from .bitcoin.node import BitcoinNode, BlockPolicy
from .core.genesis import make_ng_genesis
from .core.node import MicroblockPolicy, NGNode
from .core.params import NGParams
from .ghost.node import GhostNode
from .mining.scheduler import MiningScheduler
from .net.gossip import GossipNode

if TYPE_CHECKING:
    # Type-only: at runtime repro.experiments.config imports *this*
    # module (the Protocol enum lives here), so the reverse import must
    # never execute.
    from .experiments.config import ExperimentConfig
    from .metrics import ObservationLog
    from .net.network import Network
    from .net.simulator import Simulator
    from .sanitizer.checkers import InvariantChecker


class Protocol(enum.Enum):
    """Which consensus protocol an experiment runs."""

    BITCOIN = "bitcoin"
    BITCOIN_NG = "bitcoin-ng"
    GHOST = "ghost"


def protocol_name(protocol: Protocol | str) -> str:
    """The registry key for a protocol: its enum value or the string."""
    return protocol.value if isinstance(protocol, Protocol) else str(protocol)


class ProtocolAdapter(abc.ABC):
    """Uniform build and lifecycle surface for one consensus protocol.

    ``build_nodes`` is the construction half: given an experiment
    configuration and the shared simulation substrate, produce the
    protocol's nodes and the mining scheduler that drives them.  The
    lifecycle half (``on_crash`` / ``on_restart`` / ``resync``) is what
    the :mod:`repro.scenarios` engine calls when it injects node
    faults; the defaults model a protocol-agnostic full node that loses
    volatile relay state on crash and pulls peers' tips on rejoin.
    Subclasses override only what their protocol needs (Bitcoin-NG
    drops leadership on crash, for example).
    """

    #: Registry key; also what ``ExperimentConfig.protocol`` resolves to.
    name: ClassVar[str]

    @abc.abstractmethod
    def build_nodes(
        self,
        config: ExperimentConfig,
        sim: Simulator,
        network: Network,
        log: ObservationLog,
        shares: list[float],
    ) -> tuple[Sequence[GossipNode], MiningScheduler]:
        """Build the protocol's nodes and the scheduler that mines for them."""

    def current_leader(self, nodes: Sequence[GossipNode]) -> int | None:
        """The node id currently serializing transactions, if the
        protocol has such a role (Bitcoin-NG's epoch leader).  ``None``
        for leaderless protocols; scenario faults addressed to
        ``"leader"`` are then skipped."""
        return None

    #: Whether this adapter's checkers implement the incremental
    #: protocol (``on_event``/``check_dirty``/``depends``).  True for
    #: every checker built on :class:`repro.sanitizer.checkers
    #: .InvariantChecker` — the base class supplies sound defaults — so
    #: adapters only set this False to force full sweeps for checkers
    #: that read state the dirty tracker does not watch.
    supports_incremental_check: ClassVar[bool] = True

    def invariant_checkers(
        self, mode: str = "incremental"
    ) -> list[InvariantChecker]:
        """Fresh checker instances for ``--check`` runs of this protocol.

        ``mode`` is ``"incremental"`` or ``"full"`` (see
        :mod:`repro.sanitizer.checkers`); the instrumentation layer
        calls with the run's configured mode and falls back to a
        no-argument call for legacy adapters that predate it.

        The default is the protocol-agnostic subset (chain weight, tip
        monotonicity, mempool/UTXO consistency, coinbase maturity);
        adapters whose protocols carry richer invariants override this
        (Bitcoin-NG adds the fee-split, microblock, and poison rules).
        """
        from .sanitizer.checkers import chain_checkers

        return chain_checkers(mode)

    def on_crash(
        self, node: GossipNode, *, sim: Simulator, network: Network
    ) -> None:
        """Protocol state reaction to a crash.  The engine has already
        taken the node off the network and zeroed its mining power;
        adapters add protocol-specific teardown on top."""

    def on_restart(
        self, node: GossipNode, *, sim: Simulator, network: Network
    ) -> None:
        """Reaction to a restart; the node is back online.  Default:
        resynchronize with the network."""
        self.resync(node, sim=sim, network=network)

    def resync(
        self, node: GossipNode, *, sim: Simulator, network: Network
    ) -> None:
        """Catch a rejoining node up with its peers.

        Volatile relay bookkeeping is dropped first: a getdata that was
        outstanding when the node went down would otherwise make
        ``_on_inv`` sit on fresh announcements of the same object until
        the request timer expires — the stale-inventory wedge.  Then
        every neighbor is asked for its best tip; the replies flow
        through the ordinary inv → getdata → object path, and orphan
        handling backfills the whole gap by recursive parent fetch.
        """
        node.reset_relay_state()
        node.request_tips()


class BitcoinAdapter(ProtocolAdapter):
    """Heaviest-chain Bitcoin with synthetic full blocks."""

    name = Protocol.BITCOIN.value

    def build_nodes(
        self,
        config: ExperimentConfig,
        sim: Simulator,
        network: Network,
        log: ObservationLog,
        shares: list[float],
    ) -> tuple[list[BitcoinNode], MiningScheduler]:
        genesis = make_genesis()
        policy = BlockPolicy(
            max_block_bytes=config.block_size_bytes,
            synthetic=True,
            synthetic_tx_size=config.tx_size,
        )
        nodes = [
            BitcoinNode(
                i,
                sim,
                network,
                genesis,
                log=log,
                policy=policy,
                tie_break=TieBreak.RANDOM,
                relay_mode=config.relay_mode,
                verification_seconds_per_byte=config.verification_seconds_per_byte,
            )
            for i in range(config.n_nodes)
        ]
        scheduler = MiningScheduler(
            sim,
            shares,
            block_rate=config.block_rate,
            on_block=lambda winner: nodes[winner].generate_block(),
        )
        return nodes, scheduler


class GhostAdapter(ProtocolAdapter):
    """Bitcoin block format under the GHOST heaviest-subtree rule."""

    name = Protocol.GHOST.value

    def build_nodes(
        self,
        config: ExperimentConfig,
        sim: Simulator,
        network: Network,
        log: ObservationLog,
        shares: list[float],
    ) -> tuple[list[GhostNode], MiningScheduler]:
        genesis = make_genesis()
        policy = BlockPolicy(
            max_block_bytes=config.block_size_bytes,
            synthetic=True,
            synthetic_tx_size=config.tx_size,
        )
        nodes = [
            GhostNode(
                i,
                sim,
                network,
                genesis,
                log=log,
                policy=policy,
                relay_mode=config.relay_mode,
                verification_seconds_per_byte=config.verification_seconds_per_byte,
            )
            for i in range(config.n_nodes)
        ]
        scheduler = MiningScheduler(
            sim,
            shares,
            block_rate=config.block_rate,
            on_block=lambda winner: nodes[winner].generate_block(),
        )
        return nodes, scheduler

    def invariant_checkers(
        self, mode: str = "incremental"
    ) -> list[InvariantChecker]:
        # Heaviest-subtree fork choice may adopt a tip whose *chain*
        # work is lower than the old tip's, so the tip-monotonicity
        # checker from the default subset does not apply.
        from .sanitizer.checkers import ghost_checkers

        return ghost_checkers(mode)


class BitcoinNGAdapter(ProtocolAdapter):
    """Bitcoin-NG: key-block leader election plus microblock streams."""

    name = Protocol.BITCOIN_NG.value

    def build_nodes(
        self,
        config: ExperimentConfig,
        sim: Simulator,
        network: Network,
        log: ObservationLog,
        shares: list[float],
    ) -> tuple[list[NGNode], MiningScheduler]:
        micro_interval = 1.0 / config.block_rate
        params = NGParams(
            key_block_interval=1.0 / config.key_block_rate,
            min_microblock_interval=micro_interval,
            max_microblock_bytes=max(
                config.block_size_bytes * 2, config.block_size_bytes + 1024
            ),
        )
        genesis = make_ng_genesis()
        policy = MicroblockPolicy(
            target_bytes=config.block_size_bytes,
            synthetic=True,
            synthetic_tx_size=config.tx_size,
            synthetic_fee_per_tx=config.fee_per_tx,
        )
        nodes = [
            NGNode(
                i,
                sim,
                network,
                genesis,
                params,
                log=log,
                policy=policy,
                microblock_interval=micro_interval,
                relay_mode=config.relay_mode,
                # The paper's testbed "did not implement ... the microblock
                # signature check"; experiments follow suit for speed.
                check_signatures=False,
                verification_seconds_per_byte=config.verification_seconds_per_byte,
                ghost_fork_choice=config.ng_ghost_fork_choice,
            )
            for i in range(config.n_nodes)
        ]
        scheduler = MiningScheduler(
            sim,
            shares,
            block_rate=config.key_block_rate,
            on_block=lambda winner: nodes[winner].generate_key_block(),
        )
        return nodes, scheduler

    def current_leader(self, nodes: Sequence[GossipNode]) -> int | None:
        ng_nodes = [node for node in nodes if isinstance(node, NGNode)]
        for node in ng_nodes:
            if node.is_leader():
                return node.node_id
        if not ng_nodes:
            return None
        # Between a leader learning of its dethroning and anyone taking
        # over, fall back to whoever signed the latest key block.
        latest = ng_nodes[0].chain.latest_key_block()
        pubkey = latest.block.header.leader_pubkey
        for node in ng_nodes:
            if node.pubkey_bytes == pubkey:
                return node.node_id
        return None  # genesis epoch: its key belongs to no node

    def on_crash(
        self, node: GossipNode, *, sim: Simulator, network: Network
    ) -> None:
        # A crashed leader publishes no more microblocks; "their
        # influence ends once the next leader publishes his key block"
        # (Section 4).  Abdicating stops the generation timer loop.
        if isinstance(node, NGNode):
            node.abdicate()

    def invariant_checkers(
        self, mode: str = "incremental"
    ) -> list[InvariantChecker]:
        from .sanitizer.checkers import ng_checkers

        return ng_checkers(mode)


# -- registry ----------------------------------------------------------------

_ADAPTERS: dict[str, ProtocolAdapter] = {}


def register_adapter(
    adapter: ProtocolAdapter, *, replace: bool = False
) -> ProtocolAdapter:
    """Make ``adapter`` runnable by name through the experiment runner."""
    name = adapter.name
    if not name or not isinstance(name, str):
        raise ValueError("adapter must define a non-empty string `name`")
    if not replace and name in _ADAPTERS:
        raise ValueError(f"adapter {name!r} is already registered")
    _ADAPTERS[name] = adapter
    return adapter


def unregister_adapter(name: str) -> None:
    """Remove a registered adapter (tests and plugin teardown)."""
    _ADAPTERS.pop(name, None)


def get_adapter(protocol: Protocol | str) -> ProtocolAdapter:
    """The adapter for ``protocol`` (enum member or registered name)."""
    name = protocol_name(protocol)
    adapter = _ADAPTERS.get(name)
    if adapter is None:
        known = ", ".join(sorted(_ADAPTERS)) or "none"
        raise KeyError(
            f"no protocol adapter registered for {name!r} (registered: {known})"
        )
    return adapter


def registered_protocols() -> tuple[str, ...]:
    return tuple(sorted(_ADAPTERS))


register_adapter(BitcoinAdapter())
register_adapter(GhostAdapter())
register_adapter(BitcoinNGAdapter())
