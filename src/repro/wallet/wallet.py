"""A single-user wallet: keys, coins, and payment construction.

The paper's user model (Section 3): "Each user commands addresses, and
sends Bitcoins by forming a transaction from her address to another's
address".  This wallet derives addresses deterministically from a seed,
tracks spendable coins against a node's UTXO set, and builds signed
payments with greedy coin selection and automatic change.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import hash160
from ..crypto.keys import PrivateKey, PublicKey
from ..ledger.transactions import (
    OutPoint,
    Transaction,
    TxInput,
    TxOutput,
)
from ..ledger.utxo import UtxoSet


class WalletError(Exception):
    """Base class for wallet failures."""


class InsufficientFunds(WalletError):
    """The wallet cannot cover amount + fee with spendable coins."""


# Below this, change is not worth an output and is left as extra fee
# (Bitcoin's dust threshold is of this order).
DUST_THRESHOLD = 546


@dataclass(frozen=True)
class SpendableCoin:
    """A coin the wallet can spend right now."""

    outpoint: OutPoint
    value: int
    key_index: int


class Wallet:
    """Deterministic key chain plus payment construction.

    Addresses are derived as ``seed/<index>``; address 0 is the default
    receiving address.  The wallet holds no state about the chain —
    callers pass the UTXO set (a node's view) to query and spend.
    """

    def __init__(self, seed: str | bytes, n_keys: int = 1) -> None:
        if n_keys < 1:
            raise WalletError("wallet needs at least one key")
        if isinstance(seed, bytes):
            seed = seed.decode("latin-1")
        self._seed = seed
        self._keys: list[PrivateKey] = []
        for index in range(n_keys):
            self._keys.append(self._derive(index))

    def _derive(self, index: int) -> PrivateKey:
        return PrivateKey.from_seed(f"{self._seed}/{index}")

    # -- keys and addresses ----------------------------------------------

    @property
    def n_keys(self) -> int:
        return len(self._keys)

    def derive_key(self) -> int:
        """Add one more address; returns its index."""
        self._keys.append(self._derive(len(self._keys)))
        return len(self._keys) - 1

    def key(self, index: int = 0) -> PrivateKey:
        return self._keys[index]

    def public_key(self, index: int = 0) -> PublicKey:
        return self._keys[index].public_key()

    def pubkey_hash(self, index: int = 0) -> bytes:
        return hash160(self.public_key(index).to_bytes())

    def address(self, index: int = 0) -> str:
        return self.public_key(index).address()

    def owns(self, pubkey_hash: bytes) -> bool:
        return any(
            self.pubkey_hash(i) == pubkey_hash for i in range(self.n_keys)
        )

    # -- coins -------------------------------------------------------------

    def spendable_coins(
        self, utxo: UtxoSet, height: int
    ) -> list[SpendableCoin]:
        """All wallet coins spendable at ``height`` (maturity enforced)."""
        coins = []
        for index in range(self.n_keys):
            pkh = self.pubkey_hash(index)
            for outpoint in utxo.outpoints_for(pkh):
                coin = utxo.get(outpoint)
                assert coin is not None
                if (
                    coin.is_coinbase
                    and height - coin.height < utxo.coinbase_maturity
                ):
                    continue
                coins.append(
                    SpendableCoin(outpoint, coin.output.value, index)
                )
        return coins

    def balance(self, utxo: UtxoSet, height: int | None = None) -> int:
        """Total wallet funds; with ``height``, only mature coins count."""
        if height is not None:
            return sum(c.value for c in self.spendable_coins(utxo, height))
        return sum(
            utxo.balance(self.pubkey_hash(i)) for i in range(self.n_keys)
        )

    # -- payments -----------------------------------------------------------

    def build_payment(
        self,
        utxo: UtxoSet,
        recipients: list[tuple[bytes, int]],
        fee: int,
        height: int,
        change_index: int = 0,
    ) -> Transaction:
        """A signed transaction paying ``recipients`` plus ``fee``.

        Greedy largest-first coin selection; change below the dust
        threshold is absorbed into the fee.  Raises
        :class:`InsufficientFunds` when mature coins cannot cover it.
        """
        if fee < 0:
            raise WalletError("negative fee")
        if not recipients:
            raise WalletError("no recipients")
        amount = sum(value for _, value in recipients)
        if any(value <= 0 for _, value in recipients):
            raise WalletError("non-positive payment amount")
        coins = sorted(
            self.spendable_coins(utxo, height),
            key=lambda c: c.value,
            reverse=True,
        )
        selected: list[SpendableCoin] = []
        total = 0
        for coin in coins:
            if total >= amount + fee:
                break
            selected.append(coin)
            total += coin.value
        if total < amount + fee:
            raise InsufficientFunds(
                f"need {amount + fee}, have {total} spendable"
            )
        outputs = [TxOutput(value, pkh) for pkh, value in recipients]
        change = total - amount - fee
        if change > DUST_THRESHOLD:
            outputs.append(TxOutput(change, self.pubkey_hash(change_index)))
        tx = Transaction(
            inputs=tuple(TxInput(coin.outpoint) for coin in selected),
            outputs=tuple(outputs),
        )
        for index, coin in enumerate(selected):
            tx = tx.sign_input(index, self._keys[coin.key_index])
        return tx
