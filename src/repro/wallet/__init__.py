"""Wallet subsystem: keys, coin selection, payments, confirmations."""

from .confirmation import ConfirmationPolicy, ConfirmationTracker, TxStatus
from .wallet import (
    DUST_THRESHOLD,
    InsufficientFunds,
    SpendableCoin,
    Wallet,
    WalletError,
)

__all__ = [
    "DUST_THRESHOLD",
    "ConfirmationPolicy",
    "ConfirmationTracker",
    "InsufficientFunds",
    "SpendableCoin",
    "TxStatus",
    "Wallet",
    "WalletError",
]
