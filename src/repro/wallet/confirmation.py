"""Confirmation policy: when may a user trust a transaction?

Section 4.3: "a user that sees a microblock should wait for the
propagation time of the network before considering it in the chain, to
make sure it is not pruned by a new key block."  For higher-value
payments (and for Bitcoin) the classical rule applies: wait until the
containing block is buried under enough proof of work.

:class:`ConfirmationTracker` evaluates both rules against a chain view
and classifies a transaction's status.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..core.chain import NGChain


class TxStatus(enum.Enum):
    """Lifecycle of a submitted transaction from the user's viewpoint."""

    UNKNOWN = "unknown"  # not seen in any block
    TENTATIVE = "tentative"  # in the chain, inside the danger window
    CONFIRMED = "confirmed"  # safe under the active policy
    PRUNED = "pruned"  # its block left the main chain


@dataclass(frozen=True)
class ConfirmationPolicy:
    """Tunable thresholds for trusting a microblock entry.

    ``propagation_time`` is the §4.3 wait for low-value payments;
    ``key_block_depth`` is how many key blocks must bury the entry for
    a high-value payment to count as settled (Bitcoin's analogue is 6
    block confirmations).
    """

    propagation_time: float = 10.0
    key_block_depth: int = 1

    def __post_init__(self) -> None:
        if self.propagation_time < 0:
            raise ValueError("propagation time cannot be negative")
        if self.key_block_depth < 0:
            raise ValueError("key block depth cannot be negative")


class ConfirmationTracker:
    """Tracks the status of entries the user cares about.

    The tracker is told which block carries each transaction (wallets
    learn this from their node); status queries evaluate the chain as
    it stands now.
    """

    def __init__(self, chain: NGChain, policy: ConfirmationPolicy) -> None:
        self.chain = chain
        self.policy = policy
        self._placements: dict[bytes, tuple[bytes, float]] = {}

    def observe(self, txid: bytes, block_hash: bytes, seen_at: float) -> None:
        """Record that ``txid`` appeared in ``block_hash`` at ``seen_at``."""
        self._placements[txid] = (block_hash, seen_at)

    def status(self, txid: bytes, now: float) -> TxStatus:
        placement = self._placements.get(txid)
        if placement is None:
            return TxStatus.UNKNOWN
        block_hash, seen_at = placement
        record = self.chain.get(block_hash)
        if record is None:
            return TxStatus.UNKNOWN
        if not self.chain.is_in_main_chain(block_hash):
            return TxStatus.PRUNED
        # High-value rule: buried under enough key blocks.
        tip_key_height = self.chain.tip_record.key_height
        burial = tip_key_height - record.key_height
        if burial >= self.policy.key_block_depth:
            return TxStatus.CONFIRMED
        # Low-value rule (§4.3): the propagation-time wait.
        if now - seen_at >= self.policy.propagation_time:
            return TxStatus.CONFIRMED
        return TxStatus.TENTATIVE

    def pending(self, now: float) -> list[bytes]:
        """All tracked transactions not yet confirmed."""
        return [
            txid
            for txid in self._placements
            if self.status(txid, now)
            in (TxStatus.TENTATIVE, TxStatus.UNKNOWN)
        ]
