"""The rule registry: small AST visitors, one determinism rule each.

Every rule is a :class:`Rule` subclass registered with the
:func:`register` decorator — about 30 lines including its rationale and
a minimal bad/good example pair (which are also the source of the
``tests/lint_fixtures/`` files and of ``repro lint --explain``).  A rule
declares the modules it does *not* apply to via ``allowed_modules``:
that is policy ("wall-clock reads belong in ``repro.clock``"), distinct
from per-site ``# repro: allow[CODE]`` suppressions (exceptions).

Rule families
=============

* **NG1xx — RNG discipline.**  All randomness must flow through seeded
  ``random.Random`` streams threaded to the code that draws; the
  process-global generator, unseeded streams, numpy's global RNG, and
  OS entropy all break replayability.
* **NG2xx — wall-clock & environment leaks.**  Virtual time is the only
  clock inside a simulation; wall-clock reads live in ``repro.clock``
  and environment variables are read only at config entry points.
* **NG3xx — ordering hazards.**  Iterating an unordered container
  while scheduling events, sending messages, or drawing randomness
  makes event order depend on hash layout.
* **NG4xx — protocol-layer boundaries.**  Consensus layers must not
  import the experiment harness above them, and protocol construction
  must go through the :mod:`repro.protocols` registry.
* **NG5xx — monetary & consensus arithmetic.**  Satoshi amounts are
  integers end to end: a ``COIN``-derived value meeting ``/`` or a
  float literal grows sub-satoshi remainders that break value
  conservation, and ``==``/``!=`` against float literals inside a
  consensus layer turns rounding error into a validation verdict.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import ClassVar, TypeVar

from .findings import Finding

#: Method names whose invocation inside a loop body makes iteration
#: order observable: event scheduling, message emission, or RNG draws.
EFFECTFUL_CALLS = frozenset(
    {"schedule", "schedule_at", "send", "broadcast", "announce"}
)
RNG_METHODS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "expovariate",
        "gauss",
        "normalvariate",
        "betavariate",
    }
)
WALL_CLOCK_TIME_FNS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "localtime",
        "gmtime",
    }
)
DATETIME_NOW_FNS = frozenset({"now", "utcnow", "today"})
OS_ENTROPY = frozenset({"urandom", "getrandom"})
UUID_ENTROPY = frozenset({"uuid1", "uuid4"})
#: Concrete adapter names that must only be reached via the registry.
ADAPTER_INTERNALS = frozenset(
    {"BitcoinAdapter", "GhostAdapter", "BitcoinNGAdapter", "_ADAPTERS"}
)
#: Layers that may never import the harness above them.
PROTOCOL_LAYERS = ("repro.core", "repro.bitcoin", "repro.ghost")
HARNESS_LAYERS = ("repro.experiments", "repro.cli")
#: The hot simulation layer: NG303's array-layout rule applies only here.
NET_LAYERS = ("repro.net",)


@dataclass
class ImportMap:
    """Local aliases resolved to the modules/names they import."""

    modules: dict[str, str] = field(default_factory=dict)
    names: dict[str, tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def of(cls, tree: ast.AST) -> "ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    imports.modules[local] = target
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    imports.names[local] = (module, alias.name)
        return imports

    def module_of(self, node: ast.expr) -> str | None:
        """The dotted module a Name/Attribute expression resolves to."""
        if isinstance(node, ast.Name):
            return self.modules.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.module_of(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None


@dataclass
class ModuleContext:
    """Everything a rule sees about the module under analysis."""

    path: str  #: path as scanned, posix separators
    module: str  #: dotted module name (or fixture-directive override)
    lines: list[str]
    imports: ImportMap
    set_attrs: frozenset[str]  #: project-wide set-typed identifiers
    #: project-wide identifiers annotated as ``dict[tuple[...], ...]``
    tuple_dict_attrs: frozenset[str] = frozenset()


class LintRule:
    """Shared metadata surface of every rule, AST-local or semantic.

    The registry, the CLI's ``--explain``/``--list-rules``, and the
    fixture tests only need this: a code, a name, a rationale, and a
    byte-pinned bad/good example pair.  :class:`Rule` adds the per-
    module AST visitor half; :class:`repro.lint.semantic.rules
    .SemanticRule` adds the project-wide index half.
    """

    code: ClassVar[str]
    name: ClassVar[str]
    rationale: ClassVar[str]
    bad_example: ClassVar[str]
    good_example: ClassVar[str]
    #: Module prefixes where this rule is policy-exempt.
    allowed_modules: ClassVar[tuple[str, ...]] = ()

    @classmethod
    def applies_to(cls, module: str) -> bool:
        return not any(
            module == allowed or module.startswith(allowed + ".")
            for allowed in cls.allowed_modules
        )


class Rule(LintRule, ast.NodeVisitor):
    """One per-module determinism rule: a code, a rationale, a visitor."""

    def __init__(self, context: ModuleContext) -> None:
        self.context = context
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        snippet = ""
        if 1 <= line <= len(self.context.lines):
            snippet = self.context.lines[line - 1].strip()
        self.findings.append(
            Finding(
                path=self.context.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                code=self.code,
                message=message,
                snippet=snippet,
            )
        )


RULES: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Declaratively add a rule to the registry, keyed by its code."""
    if cls.code in RULES:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULES[cls.code] = cls
    return cls


def all_rules() -> list[type[Rule]]:
    return [RULES[code] for code in sorted(RULES)]


# -- NG1xx: RNG discipline ---------------------------------------------------


@register
class BareRandomCall(Rule):
    code = "NG101"
    name = "bare-random-call"
    rationale = (
        "Module-level `random.*` functions draw from the process-global "
        "Mersenne Twister, whose state is shared by every caller in the "
        "process: any import-order change, library internals, or a "
        "parallel worker warming the generator silently shifts every "
        "subsequent draw. All randomness must come from an explicitly "
        "seeded `random.Random` stream threaded to the code that draws."
    )
    bad_example = (
        "import random\n"
        "\n"
        "def jitter() -> float:\n"
        "    return random.random()\n"
    )
    good_example = (
        "import random\n"
        "\n"
        "def jitter(rng: random.Random) -> float:\n"
        "    return rng.random()\n"
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr != "Random"
            and self.context.imports.module_of(func.value) == "random"
        ):
            self.report(
                node,
                f"call to process-global `random.{func.attr}` — draw from "
                "a seeded `random.Random` stream passed to this code",
            )
        elif isinstance(func, ast.Name):
            origin = self.context.imports.names.get(func.id)
            if origin is not None and origin[0] == "random" and origin[1] != "Random":
                self.report(
                    node,
                    f"call to `{origin[1]}` imported from the global "
                    "`random` module — use a seeded `random.Random` stream",
                )
        self.generic_visit(node)


@register
class UnseededRandom(Rule):
    code = "NG102"
    name = "unseeded-random"
    rationale = (
        "`random.Random()` with no arguments seeds itself from OS "
        "entropy, so two runs of the same experiment draw different "
        "sequences — the exact failure determinism pins exist to catch. "
        "Every stream must be constructed with a seed expression derived "
        "from the experiment seed (salted per stream, as the topology / "
        "latency / fault streams are)."
    )
    bad_example = (
        "import random\n"
        "\n"
        "rng = random.Random()\n"
    )
    good_example = (
        "import random\n"
        "\n"
        "def make_rng(seed: int) -> random.Random:\n"
        "    return random.Random(seed * 7919 + 13)\n"
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_random_cls = (
            isinstance(func, ast.Attribute)
            and func.attr == "Random"
            and self.context.imports.module_of(func.value) == "random"
        ) or (
            isinstance(func, ast.Name)
            and self.context.imports.names.get(func.id) == ("random", "Random")
        )
        if is_random_cls and not node.args and not node.keywords:
            self.report(
                node,
                "`random.Random()` constructed without a seed expression "
                "— self-seeds from OS entropy and breaks replay",
            )
        self.generic_visit(node)


@register
class NumpyGlobalRandom(Rule):
    code = "NG103"
    name = "numpy-global-random"
    rationale = (
        "`numpy.random` module-level state is process-global and is not "
        "threaded through the experiment seed; worse, some numpy "
        "releases consume it internally. Simulation randomness uses "
        "seeded `random.Random` streams; numeric code that genuinely "
        "needs numpy sampling must build a `numpy.random.Generator` "
        "from the experiment seed inside `repro.crypto` or accept one "
        "as an argument."
    )
    bad_example = (
        "import numpy as np\n"
        "\n"
        "def noise() -> float:\n"
        "    return float(np.random.random())\n"
    )
    good_example = (
        "import random\n"
        "\n"
        "def noise(rng: random.Random) -> float:\n"
        "    return rng.random()\n"
    )

    def _is_numpy_random(self, node: ast.expr) -> bool:
        module = self.context.imports.module_of(node)
        if module is not None:
            return module == "numpy.random" or module.startswith("numpy.random.")
        if isinstance(node, ast.Name):
            return self.context.imports.names.get(node.id) == ("numpy", "random")
        return False

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Flag the `<numpy>.random` attribute itself (any use: a call,
        # a seed poke, an alias assignment) but not deeper recursion
        # noise — one finding per access chain.
        if self._is_numpy_random(node):
            self.report(
                node,
                "use of numpy's process-global `numpy.random` state — "
                "thread a seeded stream instead",
            )
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and self._is_numpy_random(node.func):
            self.report(
                node,
                "call into numpy's process-global RNG — thread a seeded "
                "stream instead",
            )
        self.generic_visit(node)


@register
class OsEntropy(Rule):
    code = "NG104"
    name = "os-entropy"
    rationale = (
        "`os.urandom`, `uuid.uuid4`, and friends read kernel entropy: "
        "every call yields a different value, so any identifier or key "
        "derived from them differs between runs. Only `repro.crypto` "
        "may touch OS entropy (real key generation for interactive "
        "use); simulation identities are derived deterministically from "
        "the experiment seed."
    )
    bad_example = (
        "import os\n"
        "\n"
        "def session_token() -> bytes:\n"
        "    return os.urandom(16)\n"
    )
    good_example = (
        "# repro-lint: module=repro.crypto.entropy\n"
        "import os\n"
        "\n"
        "def keygen_entropy() -> bytes:\n"
        "    return os.urandom(32)\n"
    )
    allowed_modules = ("repro.crypto",)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            module = self.context.imports.module_of(func.value)
            if module == "os" and func.attr in OS_ENTROPY:
                self.report(
                    node,
                    f"`os.{func.attr}` reads kernel entropy outside "
                    "repro.crypto — derive from the experiment seed",
                )
            elif module == "uuid" and func.attr in UUID_ENTROPY:
                self.report(
                    node,
                    f"`uuid.{func.attr}` is entropy/time-based outside "
                    "repro.crypto — derive ids from the experiment seed",
                )
            elif module == "secrets":
                self.report(
                    node,
                    "`secrets` module outside repro.crypto — derive from "
                    "the experiment seed",
                )
        elif isinstance(func, ast.Name):
            origin = self.context.imports.names.get(func.id)
            if origin is not None and (
                (origin[0] == "os" and origin[1] in OS_ENTROPY)
                or (origin[0] == "uuid" and origin[1] in UUID_ENTROPY)
                or origin[0] == "secrets"
            ):
                self.report(
                    node,
                    f"`{origin[0]}.{origin[1]}` reads OS entropy outside "
                    "repro.crypto — derive from the experiment seed",
                )
        self.generic_visit(node)


# -- NG2xx: wall-clock & environment leaks -----------------------------------


@register
class WallClockRead(Rule):
    code = "NG201"
    name = "wall-clock-read"
    rationale = (
        "Inside a simulation, virtual time (`sim.now`) is the only "
        "clock; a wall-clock read that feeds state, seeds, or event "
        "times makes results depend on machine speed. Legitimate "
        "wall-clock use is perf accounting only, and all of it goes "
        "through `repro.clock.wall_clock()` so the analyzer can prove "
        "nothing else touches the real clock."
    )
    bad_example = (
        "import time\n"
        "\n"
        "def measure() -> float:\n"
        "    return time.perf_counter()\n"
    )
    good_example = (
        "from repro.clock import wall_clock\n"
        "\n"
        "def measure() -> float:\n"
        "    return wall_clock()\n"
    )
    allowed_modules = ("repro.clock", "repro.cli")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            module = self.context.imports.module_of(func.value)
            if module == "time" and func.attr in WALL_CLOCK_TIME_FNS:
                self.report(
                    node,
                    f"wall-clock read `time.{func.attr}` outside "
                    "repro.clock — use repro.clock.wall_clock()",
                )
            elif func.attr in DATETIME_NOW_FNS and module in (
                "datetime",
                "datetime.datetime",
                "datetime.date",
            ):
                self.report(
                    node,
                    f"wall-clock read `{module}.{func.attr}` outside "
                    "repro.clock — simulations must use virtual time",
                )
            elif func.attr in DATETIME_NOW_FNS and isinstance(
                func.value, ast.Name
            ) and self.context.imports.names.get(func.value.id) == (
                "datetime",
                "datetime",
            ):
                self.report(
                    node,
                    f"wall-clock read `datetime.{func.attr}` outside "
                    "repro.clock — simulations must use virtual time",
                )
        elif isinstance(func, ast.Name):
            origin = self.context.imports.names.get(func.id)
            if origin is not None and origin[0] == "time" and origin[1] in (
                WALL_CLOCK_TIME_FNS
            ):
                self.report(
                    node,
                    f"wall-clock read `time.{origin[1]}` outside "
                    "repro.clock — use repro.clock.wall_clock()",
                )
        self.generic_visit(node)


@register
class EnvRead(Rule):
    code = "NG202"
    name = "env-read"
    rationale = (
        "An environment variable read deep in library code is hidden "
        "configuration: two hosts (or a developer shell and CI) run "
        "different experiments from the same config object. Environment "
        "is read only at config entry points — the CLI and the sweep "
        "executor's worker-count resolution — and flows everywhere else "
        "as explicit config fields."
    )
    bad_example = (
        "import os\n"
        "\n"
        "def block_rate() -> float:\n"
        '    return float(os.environ.get("BLOCK_RATE", "0.1"))\n'
    )
    good_example = (
        "# repro-lint: module=repro.experiments.parallel\n"
        "import os\n"
        "\n"
        "def resolve_jobs() -> int:\n"
        '    return int(os.environ.get("REPRO_JOBS", "0")) or 1\n'
    )
    allowed_modules = ("repro.cli", "repro.experiments.parallel")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        module = self.context.imports.module_of(node.value)
        if module == "os" and node.attr in ("environ", "getenv", "environb"):
            self.report(
                node,
                f"environment read `os.{node.attr}` outside a config "
                "entry point — pass configuration explicitly",
            )
            return
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            origin = self.context.imports.names.get(func.id)
            if origin is not None and origin[0] == "os" and origin[1] == "getenv":
                self.report(
                    node,
                    "environment read `os.getenv` outside a config entry "
                    "point — pass configuration explicitly",
                )
        self.generic_visit(node)


# -- NG3xx: ordering hazards -------------------------------------------------


def _effectful_call_name(body: list[ast.stmt]) -> str | None:
    """The first scheduling/send/RNG call inside ``body``, if any."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                attr = node.func.attr
                if attr in EFFECTFUL_CALLS or attr in RNG_METHODS:
                    return attr
    return None


@register
class UnorderedEffectfulIteration(Rule):
    code = "NG301"
    name = "unordered-effectful-iteration"
    rationale = (
        "Iterating a `set`/`frozenset` (or a hash-keyed `.keys()` view) "
        "while scheduling events, sending messages, or drawing "
        "randomness makes the event heap's contents depend on hash "
        "layout — insertion order, collisions, or `PYTHONHASHSEED` for "
        "string keys. The classic silent determinism breaker: results "
        "replay on one machine and diverge on another. Iterate a "
        "`sorted()` view or an insertion-ordered list instead."
    )
    bad_example = (
        "def flood(network, peers: set[int], message) -> None:\n"
        "    for peer in peers:\n"
        "        network.send(0, peer, message)\n"
    )
    good_example = (
        "def flood(network, peers: set[int], message) -> None:\n"
        "    for peer in sorted(peers):\n"
        "        network.send(0, peer, message)\n"
    )

    def _unordered_kind(self, node: ast.expr) -> str | None:
        """Why ``node`` is an unordered iterable, or None if it isn't."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return f"a `{func.id}()`"
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "keys"
                and not isinstance(func.value, ast.Dict)
            ):
                return "a `.keys()` view"
            return None
        if isinstance(node, ast.Attribute) and node.attr in self.context.set_attrs:
            return f"set-typed attribute `{node.attr}`"
        if isinstance(node, ast.Name) and node.id in self.context.set_attrs:
            return f"set-typed `{node.id}`"
        return None

    def visit_For(self, node: ast.For) -> None:
        kind = self._unordered_kind(node.iter)
        if kind is not None:
            effect = _effectful_call_name(node.body)
            if effect is not None:
                self.report(
                    node,
                    f"iteration over {kind} drives `{effect}()` — event "
                    "order now depends on hash layout; iterate a "
                    "sorted() view",
                )
        self.generic_visit(node)


@register
class HashBasedTieBreak(Rule):
    code = "NG302"
    name = "hash-based-tie-break"
    rationale = (
        "`sorted(..., key=id)` orders by CPython object addresses and "
        "`key=hash` by (possibly randomized) hash values: both produce "
        "machine- and run-dependent orderings that look stable in one "
        "process and diverge in the next. Tie-breaks must use a stable "
        "domain key — a block hash, a node id, a (time, sequence) pair."
    )
    bad_example = (
        "def order_tips(tips: list) -> list:\n"
        "    return sorted(tips, key=id)\n"
    )
    good_example = (
        "def order_tips(tips: list) -> list:\n"
        "    return sorted(tips, key=lambda tip: tip.hash)\n"
    )

    def _is_identity_key(self, value: ast.expr) -> str | None:
        if isinstance(value, ast.Name) and value.id in ("id", "hash"):
            return value.id
        if isinstance(value, ast.Lambda):
            body = value.body
            if (
                isinstance(body, ast.Call)
                and isinstance(body.func, ast.Name)
                and body.func.id in ("id", "hash")
            ):
                return body.func.id
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_sorter = (
            isinstance(func, ast.Name) and func.id in ("sorted", "min", "max")
        ) or (isinstance(func, ast.Attribute) and func.attr == "sort")
        if is_sorter:
            for keyword in node.keywords:
                if keyword.arg == "key":
                    bad = self._is_identity_key(keyword.value)
                    if bad is not None:
                        self.report(
                            node,
                            f"ordering by `key={bad}` is machine-dependent "
                            "— use a stable domain key",
                        )
        self.generic_visit(node)


@register
class TupleKeyedDictIteration(Rule):
    code = "NG303"
    name = "tuple-keyed-dict-iteration"
    rationale = (
        "Iterating a dict keyed by `(src, dst)` tuples inside the "
        "network layer walks a hash table and re-materialises a 2-tuple "
        "per edge — the exact per-edge overhead the array-core rework "
        "removed from the hot path. Per-edge state lives in flat arrays "
        "indexed by the CSR edge id (`Topology.csr()`): loop over "
        "`range(indptr[src], indptr[src + 1])` or the flat arrays "
        "themselves. Tuple-keyed dicts stay fine as point lookups "
        "(`self._eid[(src, dst)]`); only iteration is flagged."
    )
    bad_example = (
        "# repro-lint: module=repro.net.flood\n"
        "\n"
        "class Network:\n"
        "    def __init__(self) -> None:\n"
        "        self.links: dict[tuple[int, int], float] = {}\n"
        "\n"
        "    def total_latency(self) -> float:\n"
        "        total = 0.0\n"
        "        for (src, dst), latency in self.links.items():\n"
        "            total += latency\n"
        "        return total\n"
    )
    good_example = (
        "# repro-lint: module=repro.net.flood\n"
        "\n"
        "class Network:\n"
        "    def __init__(self) -> None:\n"
        "        self.edge_latency: list[float] = []\n"
        "\n"
        "    def total_latency(self) -> float:\n"
        "        total = 0.0\n"
        "        for latency in self.edge_latency:\n"
        "            total += latency\n"
        "        return total\n"
    )

    @classmethod
    def applies_to(cls, module: str) -> bool:
        # Inverted policy: a hot-path layout rule, scoped to the network
        # layer — harness, analysis, and CLI code may iterate small
        # tuple-keyed dicts (sweep grids, report tables) legitimately.
        return any(
            module == layer or module.startswith(layer + ".")
            for layer in NET_LAYERS
        )

    def _tuple_keyed_name(self, node: ast.expr) -> str | None:
        """The tuple-keyed dict identifier ``node`` iterates, if any."""
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "items",
                "keys",
                "values",
            ):
                return self._tuple_keyed_name(func.value)
            return None
        if (
            isinstance(node, ast.Attribute)
            and node.attr in self.context.tuple_dict_attrs
        ):
            return node.attr
        if (
            isinstance(node, ast.Name)
            and node.id in self.context.tuple_dict_attrs
        ):
            return node.id
        return None

    def visit_For(self, node: ast.For) -> None:
        name = self._tuple_keyed_name(node.iter)
        if name is not None:
            self.report(
                node,
                f"iterating tuple-keyed dict `{name}` in a repro.net "
                "hot path — keep per-edge state in flat CSR edge-id "
                "arrays and loop over those",
            )
        self.generic_visit(node)


# -- NG4xx: protocol-layer boundaries ----------------------------------------


def _resolve_relative(module: str, node: ast.ImportFrom) -> str:
    """The absolute dotted module an ``ImportFrom`` refers to."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    # Level 1 strips the module's own name, each extra level one more.
    base = parts[: len(parts) - node.level]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


@register
class LayerBoundaryImport(Rule):
    code = "NG401"
    name = "layer-boundary-import"
    rationale = (
        "The consensus layers (`repro.core`, `repro.bitcoin`, "
        "`repro.ghost`) are the subjects of experiments; importing the "
        "experiment harness (`repro.experiments`, `repro.cli`) from "
        "them inverts the dependency, creates import cycles, and lets "
        "harness configuration leak into protocol logic. Dependencies "
        "point strictly downward: harness → protocol → substrate."
    )
    bad_example = (
        "# repro-lint: module=repro.core.node_ext\n"
        "from repro.experiments.config import ExperimentConfig\n"
        "\n"
        "def default_config() -> ExperimentConfig:\n"
        "    return ExperimentConfig()\n"
    )
    good_example = (
        "# repro-lint: module=repro.experiments.custom\n"
        "from repro.core.params import NGParams\n"
        "\n"
        "def params() -> NGParams:\n"
        "    return NGParams()\n"
    )

    def _in_protocol_layer(self) -> bool:
        module = self.context.module
        return any(
            module == layer or module.startswith(layer + ".")
            for layer in PROTOCOL_LAYERS
        )

    def _check_target(self, node: ast.AST, target: str) -> None:
        for harness in HARNESS_LAYERS:
            if target == harness or target.startswith(harness + "."):
                self.report(
                    node,
                    f"protocol layer `{self.context.module}` imports the "
                    f"harness layer `{target}` — dependencies must point "
                    "downward",
                )
                return

    def visit_Import(self, node: ast.Import) -> None:
        if self._in_protocol_layer():
            for alias in node.names:
                self._check_target(node, alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self._in_protocol_layer():
            self._check_target(
                node, _resolve_relative(self.context.module, node)
            )


@register
class AdapterRegistryBypass(Rule):
    code = "NG402"
    name = "adapter-registry-bypass"
    rationale = (
        "Protocol construction goes through the `repro.protocols` "
        "registry (`get_adapter(name)`), which is what lets scenarios, "
        "the runner, and external plugins treat every protocol "
        "uniformly. Importing a concrete adapter class (or reaching "
        "into `_ADAPTERS`) hard-wires one protocol and bypasses "
        "registration validation — exactly the coupling the registry "
        "removed from the runner."
    )
    bad_example = (
        "from repro.protocols import BitcoinNGAdapter\n"
        "\n"
        "def build(config, sim, network, log, shares):\n"
        "    return BitcoinNGAdapter().build_nodes(config, sim, network, log, shares)\n"
    )
    good_example = (
        "from repro.protocols import get_adapter\n"
        "\n"
        "def build(config, sim, network, log, shares):\n"
        '    return get_adapter("bitcoin-ng").build_nodes(config, sim, network, log, shares)\n'
    )
    allowed_modules = ("repro.protocols",)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = _resolve_relative(self.context.module, node)
        if target == "repro.protocols" or target == "protocols":
            for alias in node.names:
                if alias.name in ADAPTER_INTERNALS:
                    self.report(
                        node,
                        f"`{alias.name}` imported directly from the "
                        "adapter registry — resolve protocols via "
                        "get_adapter(name)",
                    )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "_ADAPTERS":
            module = self.context.imports.module_of(node.value)
            if module is not None and module.endswith("protocols"):
                self.report(
                    node,
                    "direct access to the private adapter table "
                    "`_ADAPTERS` — use get_adapter()/register_adapter()",
                )
        self.generic_visit(node)


# -- NG5xx: monetary & consensus arithmetic ----------------------------------


def _mentions_coin(node: ast.expr) -> bool:
    """Whether the expression references the satoshi base unit COIN."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id == "COIN":
            return True
        if isinstance(sub, ast.Attribute) and sub.attr == "COIN":
            return True
    return False


def _has_float_literal(node: ast.expr) -> bool:
    """Whether the expression contains a float constant anywhere."""
    return any(
        isinstance(sub, ast.Constant) and type(sub.value) is float
        for sub in ast.walk(node)
    )


@register
class FloatSatoshiArithmetic(Rule):
    code = "NG501"
    name = "float-satoshi-arithmetic"
    rationale = (
        "Monetary amounts are integer satoshis end to end; the moment a "
        "COIN-derived value meets `/` or a float literal, sub-satoshi "
        "remainders appear and value conservation (a coinbase must mint "
        "exactly reward + fees) fails on rounding, not on fraud. Fee "
        "shares are computed in integer arithmetic — `split_fee()` "
        "floors one side's cut and hands the remainder to the other, so "
        "the parts always sum to the whole."
    )
    bad_example = (
        "from repro.ledger.transactions import COIN\n"
        "\n"
        "def leader_cut(fee_btc: float) -> int:\n"
        "    return int(fee_btc * COIN * 0.4)\n"
    )
    good_example = (
        "from repro.ledger.transactions import COIN\n"
        "\n"
        "DUST_LIMIT = COIN // 1000\n"
        "\n"
        "def leader_cut(fee: int) -> int:\n"
        "    return fee * 40 // 100\n"
    )
    allowed_modules = ("repro.core.params", "repro.stats")

    def visit_BinOp(self, node: ast.BinOp) -> None:
        left_coin = _mentions_coin(node.left)
        right_coin = _mentions_coin(node.right)
        if left_coin or right_coin:
            if isinstance(node.op, ast.Div):
                self.report(
                    node,
                    "true division on a COIN-derived amount yields a "
                    "float — satoshi math uses `//` (or split_fee for "
                    "shares)",
                )
                return
            other = node.right if left_coin else node.left
            if _has_float_literal(other):
                self.report(
                    node,
                    "float literal mixed into COIN-derived satoshi "
                    "arithmetic — keep amounts in integer satoshis",
                )
                return
        self.generic_visit(node)


@register
class FloatEqualityConsensus(Rule):
    code = "NG502"
    name = "float-equality-consensus"
    rationale = (
        "`==`/`!=` against a float literal inside a consensus layer "
        "turns accumulated rounding error into a validation verdict: "
        "two platforms (or one refactor that reassociates an "
        "expression) disagree about a block's validity. Consensus "
        "comparisons use inequalities with an explicit epsilon — as the "
        "microblock-interval check does — or move to an integer domain."
    )
    bad_example = (
        "# repro-lint: module=repro.core.timecheck\n"
        "\n"
        "def interval_elapsed(gap: float) -> bool:\n"
        "    return gap == 10.0\n"
    )
    good_example = (
        "# repro-lint: module=repro.core.timecheck\n"
        "\n"
        "TIME_EPSILON = 1e-9\n"
        "\n"
        "def interval_elapsed(gap: float, interval: float) -> bool:\n"
        "    return gap >= interval - TIME_EPSILON\n"
    )

    @classmethod
    def applies_to(cls, module: str) -> bool:
        # Inverted policy: this rule applies *only* inside the consensus
        # layers — harness, metrics, and analysis code compare floats
        # legitimately (assertions, plotting thresholds, test bounds).
        return any(
            module == layer or module.startswith(layer + ".")
            for layer in PROTOCOL_LAYERS
        )

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for index, op in enumerate(node.ops):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _has_float_literal(operands[index])
                or _has_float_literal(operands[index + 1])
            ):
                self.report(
                    node,
                    "float equality in a consensus path — compare with "
                    "an epsilon bound or move to an integer domain",
                )
                return
        self.generic_visit(node)
