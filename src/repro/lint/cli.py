"""The ``repro lint`` subcommand: text/JSON output, baseline, --explain.

Exit codes: 0 clean (or baseline written), 1 findings, 2 usage errors
(unknown rule code, unreadable baseline).  Kept separate from
:mod:`repro.cli` so the argparse wiring there stays one line per
subcommand and the analyzer imports only when invoked.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import LintReport, lint_paths
from .findings import describe_stale_entry, load_baseline, write_baseline
from .rules import RULES

#: Where the bad/good example fixtures live, relative to the repo root.
FIXTURE_DIR = Path("tests") / "lint_fixtures"

#: Human names for the rule families, keyed by code prefix.
FAMILIES = {
    "NG1": "rng",
    "NG2": "clock/env",
    "NG3": "ordering",
    "NG4": "layering",
    "NG5": "arithmetic",
    "NG6": "semantic",
}


def add_lint_parser(commands: argparse._SubParsersAction) -> None:
    parser = commands.add_parser(
        "lint",
        help="run the determinism & protocol-invariant static analyzer",
        description=(
            "Analyze Python sources for determinism hazards (unseeded "
            "RNG, wall-clock leaks, unordered iteration driving the "
            "event heap) and protocol-layer violations. See "
            "docs/static-analysis.md for the rule catalog."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="machine-readable findings (schema v1)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="baseline file freezing known findings (JSON)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings into --baseline FILE and exit 0",
    )
    parser.add_argument(
        "--explain",
        metavar="CODE",
        default=None,
        help="print a rule's rationale and bad/good example pair",
    )
    parser.add_argument(
        "--select",
        metavar="CODE[,CODE]",
        default=None,
        help="run only these rule codes",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODE[,CODE]",
        default=None,
        help="run every rule except these codes",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table (code, family, rationale) and exit",
    )
    parser.add_argument(
        "--why",
        action="store_true",
        help="append call-path explanations to NG6xx findings",
    )
    parser.add_argument(
        "--semantic-cache",
        metavar="FILE",
        default=None,
        help=(
            "on-disk semantic index cache (JSON); unchanged modules "
            "are reused across runs instead of re-extracted"
        ),
    )
    parser.set_defaults(handler=cmd_lint)


def _find_fixture(code: str, suffix: str) -> str | None:
    """The committed fixture snippet for ``code``, if locatable.

    Searched relative to the working directory and to the repository
    this module lives in; an installed wheel without the test tree
    falls back to the rule's embedded examples (same content — a test
    pins them equal).
    """
    candidates = [
        Path.cwd() / FIXTURE_DIR,
        Path(__file__).resolve().parents[3] / FIXTURE_DIR,
    ]
    for directory in candidates:
        fixture = directory / f"{code}_{suffix}.py"
        if fixture.is_file():
            return fixture.read_text(encoding="utf-8")
    return None


def _explain(code: str) -> int:
    rule = RULES.get(code)
    if rule is None:
        known = ", ".join(sorted(RULES))
        print(f"error: unknown rule code {code!r} (known: {known})",
              file=sys.stderr)
        return 2
    bad = _find_fixture(code, "bad") or rule.bad_example
    good = _find_fixture(code, "good") or rule.good_example
    print(f"{rule.code} ({rule.name})")
    print()
    print(rule.rationale)
    print()
    print("bad:")
    for line in bad.rstrip().splitlines():
        print(f"    {line}")
    print()
    print("good:")
    for line in good.rstrip().splitlines():
        print(f"    {line}")
    print()
    print(f"suppress one site with:  # repro: allow[{rule.code}]")
    return 0


def _first_sentence(text: str, width: int = 68) -> str:
    """The leading sentence of a rationale, clipped for table display."""
    sentence = text.split(". ")[0].rstrip(".") + "."
    if len(sentence) > width:
        sentence = sentence[: width - 1].rstrip() + "…"
    return sentence


def _list_rules() -> int:
    print(f"{'code':<7} {'family':<11} {'name':<30} rationale")
    for code in sorted(RULES):
        rule = RULES[code]
        family = FAMILIES.get(code[:3], "?")
        print(
            f"{rule.code:<7} {family:<11} {rule.name:<30} "
            f"{_first_sentence(rule.rationale)}"
        )
    return 0


def _resolve_codes(args: argparse.Namespace) -> list[str] | None:
    """The rule subset --select/--ignore ask for (None = every rule).

    Raises KeyError on unknown codes, same as the engine, so both
    flags share one exit-2 path in :func:`cmd_lint`.
    """
    if args.select and args.ignore:
        raise ValueError("--select and --ignore are mutually exclusive")
    if not args.select and not args.ignore:
        return None
    raw = args.select or args.ignore
    codes = {code.strip() for code in raw.split(",") if code.strip()}
    unknown = codes - set(RULES)
    if unknown:
        raise KeyError(f"unknown rule codes: {sorted(unknown)}")
    if args.select:
        return sorted(codes)
    return sorted(set(RULES) - codes)


def _print_text(
    report: LintReport,
    baseline_path: str | None,
    *,
    show_why: bool = False,
) -> None:
    for finding in report.findings:
        print(finding.format(show_why=show_why))
    summary = (
        f"{len(report.findings)} finding(s) in "
        f"{report.files_scanned} file(s)"
    )
    extras = []
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed inline")
    if report.baselined:
        extras.append(f"{report.baselined} hidden by baseline")
    if extras:
        summary += f" ({', '.join(extras)})"
    print(summary)
    for fingerprint in report.stale_baseline:
        path, code, _ = describe_stale_entry(fingerprint)
        print(
            f"warning: stale baseline entry {code} in {path} "
            f"(fixed? remove it from {baseline_path}): {fingerprint}",
            file=sys.stderr,
        )


def cmd_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        return _list_rules()
    if args.explain is not None:
        return _explain(args.explain)

    try:
        codes = _resolve_codes(args)
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2

    baseline: dict[str, str] | None = None
    if args.baseline and not args.write_baseline:
        baseline_file = Path(args.baseline)
        if baseline_file.exists():
            try:
                baseline = load_baseline(baseline_file)
            except (ValueError, json.JSONDecodeError) as exc:
                print(f"error: bad baseline {args.baseline}: {exc}",
                      file=sys.stderr)
                return 2

    try:
        report = lint_paths(
            args.paths,
            baseline=baseline,
            codes=codes,
            semantic_cache=args.semantic_cache,
        )
    except (FileNotFoundError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if not args.baseline:
            print("error: --write-baseline requires --baseline FILE",
                  file=sys.stderr)
            return 2
        count = write_baseline(args.baseline, report.findings)
        print(f"baseline written: {count} entry(ies) to {args.baseline}")
        return 0

    if args.json:
        print(json.dumps(report.to_payload(), indent=2, sort_keys=True))
    else:
        _print_text(report, args.baseline, show_why=args.why)
    return 0 if report.clean else 1
