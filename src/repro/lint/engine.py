"""The analyzer driver: collect files, build the index, run both rule halves.

One lint run has three stages:

1. parse every scanned file once;
2. build (or incrementally refresh) the **semantic index** — symbol
   tables, class-resolution map, approximate call graph, and dataflow
   summaries, cached on disk keyed by per-file content hashes (see
   :mod:`repro.lint.semantic`).  The old project-wide set/tuple-dict
   "harvests" now come off the index too, instead of a second AST pass;
3. run the per-module AST rules (one visitor instance per rule ×
   module) and the project-wide semantic rules (one :meth:`check` call
   per rule), then route everything through inline suppressions and
   the optional baseline.

Findings come out sorted by (path, line, code) so output is stable for
tests and CI diffs.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence, cast

from .findings import Finding, is_suppressed, split_by_baseline
from .rules import ImportMap, ModuleContext, Rule, all_rules
from .semantic.index import SemanticIndex, build_index
from .semantic.rules import SemanticRule

#: Fixture files (and only fixtures) may claim a module identity so
#: layer/allowlist rules can be exercised outside the real tree.
MODULE_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*module=([A-Za-z_][\w.]*)"
)
#: How many leading lines are searched for the module directive.
DIRECTIVE_WINDOW = 5

JSON_SCHEMA_VERSION = 1


@dataclass
class LintReport:
    """Outcome of one analyzer run."""

    findings: list[Finding]  #: surviving findings (fail the run)
    suppressed: int  #: hits silenced by inline ``# repro: allow[...]``
    baselined: int  #: hits hidden by the baseline file
    stale_baseline: list[str]  #: baseline entries matching nothing
    files_scanned: int
    index_cache_hits: int = 0  #: module summaries reused from disk
    index_cache_misses: int = 0  #: module summaries re-extracted

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_payload(self) -> dict[str, Any]:
        """The ``repro lint --json`` document."""
        return {
            "version": JSON_SCHEMA_VERSION,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "files_scanned": self.files_scanned,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "stale_baseline": self.stale_baseline,
                "index_cache_hits": self.index_cache_hits,
                "index_cache_misses": self.index_cache_misses,
            },
        }


@dataclass
class _ParsedModule:
    path: Path
    display_path: str
    module: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    source: str = ""


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    seen.setdefault(candidate, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
        else:
            raise FileNotFoundError(f"not a .py file or directory: {path}")
    return sorted(seen)


def infer_module(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path part."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    return parts[-1] if parts else ""


def _module_name(path: Path, lines: list[str]) -> str:
    for line in lines[:DIRECTIVE_WINDOW]:
        match = MODULE_DIRECTIVE_RE.search(line)
        if match:
            return match.group(1)
    return infer_module(path)


def _parse(path: Path) -> _ParsedModule:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    return _ParsedModule(
        path=path,
        display_path=path.as_posix(),
        module=_module_name(path, lines),
        tree=tree,
        lines=lines,
        source=source,
    )


def build_semantic_index(
    modules: Sequence[_ParsedModule],
    *,
    cache_path: Path | None = None,
) -> SemanticIndex:
    """The project-wide index for one parsed module set."""
    return build_index(
        [
            (m.display_path, m.module, m.tree, m.lines, m.source)
            for m in modules
        ],
        cache_path=cache_path,
    )


def lint_paths(
    paths: Sequence[str | Path],
    *,
    baseline: dict[str, str] | None = None,
    codes: Sequence[str] | None = None,
    semantic_cache: str | Path | None = None,
) -> LintReport:
    """Run every registered rule over ``paths`` and apply escape hatches.

    ``codes`` restricts the run to a subset of rule codes (used by the
    fixture tests to exercise one rule at a time).  ``semantic_cache``
    names the on-disk index cache; without it the index is rebuilt from
    scratch each run (still one pass, just no cross-run reuse).
    """
    files = collect_files(paths)
    modules = [_parse(path) for path in files]
    index = build_semantic_index(
        modules,
        cache_path=Path(semantic_cache) if semantic_cache else None,
    )
    set_attrs = index.set_identifiers()
    tuple_dict_attrs = index.tuple_dict_identifiers()

    selected = all_rules()
    if codes is not None:
        unknown = set(codes) - {rule.code for rule in selected}
        if unknown:
            raise KeyError(f"unknown rule codes: {sorted(unknown)}")
        selected = [rule for rule in selected if rule.code in set(codes)]
    ast_rules = [
        cast("type[Rule]", rule) for rule in selected
        if issubclass(rule, Rule)
    ]
    semantic_rules = [
        cast("type[SemanticRule]", rule) for rule in selected
        if issubclass(rule, SemanticRule)
    ]

    lines_by_path = {m.display_path: m.lines for m in modules}
    module_by_path = {m.display_path: m.module for m in modules}

    raw: list[Finding] = []
    suppressed = 0
    for parsed in modules:
        context = ModuleContext(
            path=parsed.display_path,
            module=parsed.module,
            lines=parsed.lines,
            imports=ImportMap.of(parsed.tree),
            set_attrs=set_attrs,
            tuple_dict_attrs=tuple_dict_attrs,
        )
        for rule_cls in ast_rules:
            if not rule_cls.applies_to(parsed.module):
                continue
            rule: Rule = rule_cls(context)
            rule.visit(parsed.tree)
            for finding in rule.findings:
                if is_suppressed(finding, parsed.lines):
                    suppressed += 1
                else:
                    raw.append(finding)

    for semantic_cls in semantic_rules:
        semantic_rule = semantic_cls()
        for finding in semantic_rule.check(index, lines_by_path):
            module = module_by_path.get(finding.path, "")
            if not semantic_cls.applies_to(module):
                continue
            if is_suppressed(finding, lines_by_path.get(finding.path, [])):
                suppressed += 1
            else:
                raw.append(finding)

    raw.sort(key=lambda f: (f.path, f.line, f.code))
    new, hidden, stale = split_by_baseline(raw, baseline or {})
    return LintReport(
        findings=new,
        suppressed=suppressed,
        baselined=len(hidden),
        stale_baseline=stale,
        files_scanned=len(files),
        index_cache_hits=index.cache_hits,
        index_cache_misses=index.cache_misses,
    )
