"""The analyzer driver: collect files, run rules, apply escape hatches.

Two passes over the scanned tree:

1. a *type-hint harvest* that records every identifier the project
   annotates (or assigns) as a ``set``/``frozenset`` — attribute names
   from ``self.x: set[int]``, dataclass fields, function parameters,
   and plain assignments from ``set()``/``frozenset()`` calls.  The
   harvest is project-wide, so ``repro.net.network`` iterating
   ``topology.edges`` is caught even though ``edges`` is declared in
   ``repro.net.topology``;
2. the rule visitors themselves, one instance per (rule, module).

Findings then pass through inline suppressions and the optional
baseline, and come out sorted by (path, line, code) so output is stable
for tests and CI diffs.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

from .findings import Finding, is_suppressed, split_by_baseline
from .rules import ImportMap, ModuleContext, Rule, all_rules

#: Fixture files (and only fixtures) may claim a module identity so
#: layer/allowlist rules can be exercised outside the real tree.
MODULE_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*module=([A-Za-z_][\w.]*)"
)
#: How many leading lines are searched for the module directive.
DIRECTIVE_WINDOW = 5

JSON_SCHEMA_VERSION = 1


@dataclass
class LintReport:
    """Outcome of one analyzer run."""

    findings: list[Finding]  #: surviving findings (fail the run)
    suppressed: int  #: hits silenced by inline ``# repro: allow[...]``
    baselined: int  #: hits hidden by the baseline file
    stale_baseline: list[str]  #: baseline entries matching nothing
    files_scanned: int

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_payload(self) -> dict[str, Any]:
        """The ``repro lint --json`` document."""
        return {
            "version": JSON_SCHEMA_VERSION,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "files_scanned": self.files_scanned,
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "stale_baseline": self.stale_baseline,
            },
        }


@dataclass
class _ParsedModule:
    path: Path
    display_path: str
    module: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)


def collect_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py list."""
    seen: dict[Path, None] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if "__pycache__" not in candidate.parts:
                    seen.setdefault(candidate, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
        else:
            raise FileNotFoundError(f"not a .py file or directory: {path}")
    return sorted(seen)


def infer_module(path: Path) -> str:
    """Dotted module name, anchored at the last ``repro`` path part."""
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    return parts[-1] if parts else ""


def _module_name(path: Path, lines: list[str]) -> str:
    for line in lines[:DIRECTIVE_WINDOW]:
        match = MODULE_DIRECTIVE_RE.search(line)
        if match:
            return match.group(1)
    return infer_module(path)


def _annotation_is_setlike(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in (
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
        ):
            return True
    return False


def _target_identifier(target: ast.expr) -> str | None:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute) and isinstance(
        target.value, ast.Name
    ):
        return target.attr
    return None


def _annotation_is_tuple_keyed_dict(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("dict", "Dict")
            and isinstance(node.slice, ast.Tuple)
            and node.slice.elts
        ):
            key = node.slice.elts[0]
            for part in ast.walk(key):
                if isinstance(part, ast.Name) and part.id in (
                    "tuple",
                    "Tuple",
                ):
                    return True
    return False


def harvest_set_identifiers(trees: Iterable[ast.Module]) -> frozenset[str]:
    """Identifiers the project declares or builds as set/frozenset.

    Over-approximates on purpose (a name counts if *any* module types
    it as a set): the consumer rule (NG301) only fires when the loop
    body is effectful, and a stray hit is one ``sorted()`` or inline
    suppression away — cheap compared to a silent ordering heisenbug.
    """
    names: set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                if _annotation_is_setlike(node.annotation):
                    identifier = _target_identifier(node.target)
                    if identifier:
                        names.add(identifier)
            elif isinstance(node, ast.arg):
                if _annotation_is_setlike(node.annotation):
                    names.add(node.arg)
            elif isinstance(node, ast.Assign):
                value = node.value
                is_set_value = isinstance(value, ast.Set) or (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("set", "frozenset")
                )
                if is_set_value:
                    for target in node.targets:
                        identifier = _target_identifier(target)
                        if identifier:
                            names.add(identifier)
    return frozenset(names)


def harvest_tuple_dict_identifiers(
    trees: Iterable[ast.Module],
) -> frozenset[str]:
    """Identifiers the project annotates as ``dict[tuple[...], ...]``.

    Feeds NG303: inside ``repro.net``, *iterating* one of these is a
    hot-path layout smell — per-edge state belongs in flat CSR edge-id
    arrays, with tuple-keyed dicts kept to point lookups.  Like the set
    harvest above, this is project-wide and over-approximates by name.
    """
    names: set[str] = set()
    for tree in trees:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                if _annotation_is_tuple_keyed_dict(node.annotation):
                    identifier = _target_identifier(node.target)
                    if identifier:
                        names.add(identifier)
            elif isinstance(node, ast.arg):
                if _annotation_is_tuple_keyed_dict(node.annotation):
                    names.add(node.arg)
    return frozenset(names)


def _parse(path: Path) -> _ParsedModule:
    source = path.read_text(encoding="utf-8")
    lines = source.splitlines()
    tree = ast.parse(source, filename=str(path))
    return _ParsedModule(
        path=path,
        display_path=path.as_posix(),
        module=_module_name(path, lines),
        tree=tree,
        lines=lines,
    )


def lint_paths(
    paths: Sequence[str | Path],
    *,
    baseline: dict[str, str] | None = None,
    codes: Sequence[str] | None = None,
) -> LintReport:
    """Run every registered rule over ``paths`` and apply escape hatches.

    ``codes`` restricts the run to a subset of rule codes (used by the
    fixture tests to exercise one rule at a time).
    """
    files = collect_files(paths)
    modules = [_parse(path) for path in files]
    set_attrs = harvest_set_identifiers(m.tree for m in modules)
    tuple_dict_attrs = harvest_tuple_dict_identifiers(
        m.tree for m in modules
    )

    selected = all_rules()
    if codes is not None:
        unknown = set(codes) - {rule.code for rule in selected}
        if unknown:
            raise KeyError(f"unknown rule codes: {sorted(unknown)}")
        selected = [rule for rule in selected if rule.code in set(codes)]

    raw: list[Finding] = []
    suppressed = 0
    for parsed in modules:
        context = ModuleContext(
            path=parsed.display_path,
            module=parsed.module,
            lines=parsed.lines,
            imports=ImportMap.of(parsed.tree),
            set_attrs=set_attrs,
            tuple_dict_attrs=tuple_dict_attrs,
        )
        for rule_cls in selected:
            if not rule_cls.applies_to(parsed.module):
                continue
            rule: Rule = rule_cls(context)
            rule.visit(parsed.tree)
            for finding in rule.findings:
                if is_suppressed(finding, parsed.lines):
                    suppressed += 1
                else:
                    raw.append(finding)

    raw.sort(key=lambda f: (f.path, f.line, f.code))
    new, hidden, stale = split_by_baseline(raw, baseline or {})
    return LintReport(
        findings=new,
        suppressed=suppressed,
        baselined=len(hidden),
        stale_baseline=stale,
        files_scanned=len(files),
    )
