"""Finding model, inline suppressions, and the frozen-debt baseline.

A :class:`Finding` is one rule hit: file, position, rule code, message,
and the offending source line.  Findings are value objects that
round-trip through JSON (``repro lint --json``) and are identified for
baselining by a *fingerprint* that deliberately excludes the line
number — code moving around a file must not resurrect frozen debt.

Two escape hatches exist, in increasing scope:

* an inline ``# repro: allow[CODE]`` comment on the offending line (or
  the line directly above it) suppresses one finding at one site;
* a committed baseline file (``repro lint --baseline FILE``) freezes a
  set of known findings with a justification each, hiding them until
  the underlying code changes — at which point they resurface.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

#: Inline suppression: ``# repro: allow[NG101]`` or ``allow[NG101,NG301]``.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Z0-9,\s]+)\]")

BASELINE_VERSION = 1


@dataclass(frozen=True, slots=True)
class Finding:
    """One static-analysis finding."""

    path: str  #: file as scanned, posix separators
    line: int  #: 1-based line of the offending node
    col: int  #: 0-based column of the offending node
    code: str  #: rule code, e.g. ``"NG101"``
    message: str  #: human explanation of this specific hit
    snippet: str  #: the offending source line, stripped
    #: Interprocedural call-path explanation (NG6xx); one step per line,
    #: rendered by ``repro lint --why``.
    why: tuple[str, ...] = ()
    #: Optional semantic identity overriding the snippet for
    #: fingerprinting.  Semantic (NG6xx) findings anchor on a ``def`` or
    #: ``class`` line whose text changes under pure refactors (a renamed
    #: parameter, a new annotation), and identical ``def`` lines collide
    #: across classes — so those rules fingerprint on their line-free
    #: message instead.
    identity: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline mechanism.

        Hashing the snippet rather than recording the line means the
        baseline survives unrelated edits above the finding, but any
        change to the offending line itself resurfaces it.  Findings
        carrying an explicit ``identity`` (the semantic rules) hash that
        instead, so refactors that rewrite the anchor line — or shift
        the ``why`` call path — cannot resurrect frozen debt.
        """
        basis = self.identity or self.snippet
        digest = hashlib.sha256(basis.encode("utf-8")).hexdigest()[:12]
        return f"{self.path}:{self.code}:{digest}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
            "snippet": self.snippet,
            "why": list(self.why),
            "identity": self.identity,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Finding":
        return cls(
            path=data["path"],
            line=int(data["line"]),
            col=int(data["col"]),
            code=data["code"],
            message=data["message"],
            snippet=data["snippet"],
            why=tuple(data.get("why", ())),
            identity=data.get("identity", ""),
        )

    def format(self, *, show_why: bool = False) -> str:
        """The two-line text rendering used by the CLI.

        With ``show_why``, NG6xx findings append their call-path
        explanation, one indented ``because:``/``then:`` step per line.
        """
        text = (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.code} {self.message}\n    {self.snippet}"
        )
        if show_why and self.why:
            steps = [
                f"    {'because' if index == 0 else 'then'}: {step}"
                for index, step in enumerate(self.why)
            ]
            text = "\n".join([text, *steps])
        return text


def suppressed_codes(lines: list[str], line: int) -> set[str]:
    """Codes allowed at 1-based ``line`` by inline comments.

    Both the offending line and the line directly above it are
    honoured, so long statements can carry the comment on their own
    line without fighting formatters.
    """
    codes: set[str] = set()
    for lineno in (line, line - 1):
        if 1 <= lineno <= len(lines):
            match = SUPPRESS_RE.search(lines[lineno - 1])
            if match:
                codes.update(
                    part.strip() for part in match.group(1).split(",")
                )
    return codes


def is_suppressed(finding: Finding, lines: list[str]) -> bool:
    return finding.code in suppressed_codes(lines, finding.line)


# -- baseline ----------------------------------------------------------------


def load_baseline(path: str | Path) -> dict[str, str]:
    """Read a baseline file into ``{fingerprint: justification}``."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} "
            f"(expected {BASELINE_VERSION})"
        )
    entries = data.get("entries", {})
    if not isinstance(entries, dict):
        raise ValueError("baseline 'entries' must be an object")
    return {str(k): str(v) for k, v in entries.items()}


def write_baseline(
    path: str | Path,
    findings: Iterable[Finding],
    justification: str = "frozen by repro lint --write-baseline; justify me",
) -> int:
    """Freeze ``findings`` into a baseline file; returns the entry count.

    Every entry carries a justification string the team is expected to
    edit — an unexplained baseline is just hidden debt.
    """
    entries = {f.fingerprint: justification for f in findings}
    payload = {"version": BASELINE_VERSION, "entries": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return len(entries)


def split_by_baseline(
    findings: list[Finding], baseline: dict[str, str]
) -> tuple[list[Finding], list[Finding], list[str]]:
    """Partition findings against a baseline.

    Returns ``(new, hidden, stale)``: findings not in the baseline,
    findings the baseline hides, and baseline fingerprints that no
    longer match anything (fixed debt whose entry should be deleted).
    """
    if not baseline:
        return findings, [], []
    new: list[Finding] = []
    hidden: list[Finding] = []
    seen: set[str] = set()
    for finding in findings:
        fingerprint = finding.fingerprint
        if fingerprint in baseline:
            hidden.append(finding)
            seen.add(fingerprint)
        else:
            new.append(finding)
    stale = sorted(set(baseline) - seen)
    return new, hidden, stale


def describe_stale_entry(fingerprint: str) -> tuple[str, str, str]:
    """``(path, code, digest)`` parsed back out of a baseline fingerprint.

    Fingerprints are ``{path}:{code}:{digest}``; the path may itself
    contain colons only on exotic filesystems, so we split from the
    right.  Malformed entries (hand-edited baselines) degrade to
    placeholders rather than crashing the stale report.
    """
    parts = fingerprint.rsplit(":", 2)
    if len(parts) == 3 and parts[1] and parts[2]:
        return parts[0], parts[1], parts[2]
    return fingerprint, "?", "?"
