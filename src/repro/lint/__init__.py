"""repro.lint: the determinism & protocol-invariant static analyzer.

Every reproducibility guarantee in this repository — parallel sweeps
identical to serial, instrumented runs identical to bare, scenarios
replaying bit-for-bit — rests on implicit discipline: seeded RNG
streams only, virtual time only, ordered iteration wherever events or
messages are produced, and strict layering between protocols and the
experiment harness.  This package turns that discipline into
machine-checked rules over the AST, in the spirit of the deterministic-
simulation testing tradition (FoundationDB's harness being the
canonical example): the cheapest place to catch a determinism heisenbug
is before it runs.

Use it as ``repro lint [paths]`` (see :mod:`repro.lint.cli`) or
programmatically::

    from repro.lint import lint_paths
    report = lint_paths(["src"])
    assert report.clean, report.findings

The rule catalog lives in ``docs/static-analysis.md``; adding a rule is
one registered visitor class in :mod:`repro.lint.rules`.
"""

from .engine import LintReport, collect_files, lint_paths
from .findings import (
    Finding,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from .rules import RULES, LintRule, Rule, all_rules, register
from .semantic import SemanticIndex, SemanticRule, build_index

__all__ = [
    "Finding",
    "LintReport",
    "LintRule",
    "RULES",
    "Rule",
    "SemanticIndex",
    "SemanticRule",
    "all_rules",
    "build_index",
    "collect_files",
    "lint_paths",
    "load_baseline",
    "register",
    "split_by_baseline",
    "write_baseline",
]
