"""Project-wide semantic index and the NG6xx interprocedural rules.

Importing this package registers NG601–NG604 in the shared rule
registry (:data:`repro.lint.rules.RULES`); :mod:`repro.lint` does so on
package import, which is why ``repro lint`` always sees them.
"""

from .extract import (
    MUTATING_METHODS,
    VERSIONED_MARKER,
    content_sha,
    extract_module,
    harvest_set_idents,
    harvest_tuple_dict_idents,
    rng_stream_tag,
)
from .index import (
    INDEX_VERSION,
    FunctionKey,
    SemanticIndex,
    build_index,
    load_cache,
)
from .model import (
    ArgInfo,
    CallSite,
    ClassSummary,
    FunctionSummary,
    ModuleSummary,
    ParamRef,
    RngAssign,
    WriteSite,
)
from .rules import (
    AdapterSurfaceConformance,
    ImpureChecker,
    MissingVersionBump,
    RngStreamProvenance,
    SemanticRule,
)

__all__ = [
    "AdapterSurfaceConformance",
    "ArgInfo",
    "CallSite",
    "ClassSummary",
    "FunctionKey",
    "FunctionSummary",
    "ImpureChecker",
    "INDEX_VERSION",
    "MissingVersionBump",
    "ModuleSummary",
    "MUTATING_METHODS",
    "ParamRef",
    "RngAssign",
    "RngStreamProvenance",
    "SemanticIndex",
    "SemanticRule",
    "VERSIONED_MARKER",
    "WriteSite",
    "build_index",
    "content_sha",
    "extract_module",
    "harvest_set_idents",
    "harvest_tuple_dict_idents",
    "load_cache",
    "rng_stream_tag",
]
