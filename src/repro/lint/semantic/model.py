"""The semantic index data model: what one lint run knows about src/.

Everything here is a value object with a deterministic ``to_dict`` /
``from_dict`` round-trip: the index is cached on disk between lint runs
(keyed by file content hashes) and the determinism tests pin the JSON
rendering byte-identical across runs, so every container serializes in
a fixed order — dicts sorted by key, tuples in AST extraction order.

The model is deliberately *approximate* in documented ways (see
:mod:`repro.lint.semantic.extract`): taint tracks assignment roots, not
aliases through containers; call resolution covers self-calls, local
names, and imports, not duck-typed receivers.  The NG6xx rules built on
top are tuned so those approximations under-report rather than spray
false positives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Bump-formula atoms/combinators, serialized as nested JSON lists:
#: ``True``/``False`` leaves, ``["call", name]`` for "this self-call
#: bumps iff the callee does", ``["and", ...]`` / ``["or", ...]``.
Formula = Any


@dataclass(frozen=True)
class ParamRef:
    """A value derived from a function parameter: root + attribute path.

    ``self._entries`` inside a method is ``ParamRef("self",
    ("_entries",))``; ``node.mempool`` inside a checker hook is
    ``ParamRef("node", ("mempool",))``.  The root is what mutation and
    call-edge propagation key on.
    """

    root: str
    chain: tuple[str, ...] = ()

    def extend(self, attr: str) -> "ParamRef":
        return ParamRef(self.root, self.chain + (attr,))

    def display(self) -> str:
        return ".".join((self.root, *self.chain))

    def to_dict(self) -> dict[str, Any]:
        return {"root": self.root, "chain": list(self.chain)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ParamRef":
        return cls(root=data["root"], chain=tuple(data["chain"]))


@dataclass(frozen=True)
class WriteSite:
    """One state write: which attribute/parameter, where, and the line."""

    target: str  #: self-attribute name or parameter root written through
    lineno: int
    desc: str  #: the offending source line, stripped

    def to_dict(self) -> dict[str, Any]:
        return {"target": self.target, "lineno": self.lineno, "desc": self.desc}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "WriteSite":
        return cls(
            target=data["target"],
            lineno=int(data["lineno"]),
            desc=data["desc"],
        )


@dataclass(frozen=True)
class ArgInfo:
    """One call argument as the dataflow analyses see it."""

    taint: ParamRef | None  #: the caller parameter it derives from
    display: str | None  #: dotted source text for Name/Attribute args
    rng_tag: str | None  #: RNG stream tag (``topo_rng`` → ``"topo"``)

    def to_dict(self) -> dict[str, Any]:
        return {
            "taint": self.taint.to_dict() if self.taint else None,
            "display": self.display,
            "rng_tag": self.rng_tag,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ArgInfo":
        taint = data.get("taint")
        return cls(
            taint=ParamRef.from_dict(taint) if taint else None,
            display=data.get("display"),
            rng_tag=data.get("rng_tag"),
        )


@dataclass(frozen=True)
class CallSite:
    """One call expression, classified for later resolution.

    ``kind``/``target`` pairs:

    * ``("self", (method,))`` — ``self.method(...)``;
    * ``("local", (name,))`` — a same-module function or class;
    * ``("import", (module, name))`` — a name imported from ``module``
      (relative imports resolved to absolute dotted paths);
    * ``("module", (module, attr))`` — ``mod.attr(...)`` via an
      imported module alias;
    * ``("unknown", ())`` — anything else (duck-typed receivers).
    """

    lineno: int
    kind: str
    target: tuple[str, ...]
    args: tuple[ArgInfo, ...] = ()
    keywords: tuple[tuple[str, ArgInfo], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "lineno": self.lineno,
            "kind": self.kind,
            "target": list(self.target),
            "args": [arg.to_dict() for arg in self.args],
            "keywords": [[name, arg.to_dict()] for name, arg in self.keywords],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CallSite":
        return cls(
            lineno=int(data["lineno"]),
            kind=data["kind"],
            target=tuple(data["target"]),
            args=tuple(ArgInfo.from_dict(a) for a in data["args"]),
            keywords=tuple(
                (name, ArgInfo.from_dict(arg)) for name, arg in data["keywords"]
            ),
        )


@dataclass(frozen=True)
class RngAssign:
    """A tagged-RNG assignment whose source stream differs from its target."""

    lineno: int
    target: str
    target_tag: str
    value: str
    value_tag: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "lineno": self.lineno,
            "target": self.target,
            "target_tag": self.target_tag,
            "value": self.value,
            "value_tag": self.value_tag,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RngAssign":
        return cls(
            lineno=int(data["lineno"]),
            target=data["target"],
            target_tag=data["target_tag"],
            value=data["value"],
            value_tag=data["value_tag"],
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the NG6xx rules need to know about one function."""

    name: str
    lineno: int
    #: Named parameters in order (positional then keyword-only),
    #: including ``self`` for methods.
    params: tuple[str, ...]
    is_method: bool = False
    has_vararg: bool = False
    has_kwarg: bool = False
    #: Trailing decorator names (``abc.abstractmethod`` → ``"abstractmethod"``).
    decorators: tuple[str, ...] = ()
    #: Writes through ``self`` (excluding ``.version`` bumps).
    self_writes: tuple[WriteSite, ...] = ()
    #: Writes through non-self parameters (the purity rule's seeds).
    param_mutations: tuple[WriteSite, ...] = ()
    #: Parameters whose (possibly attribute-derived) value is returned.
    returns_params: tuple[str, ...] = ()
    #: Whether every path bumps ``self.version`` (see extract module).
    bump_formula: Formula = False
    calls: tuple[CallSite, ...] = ()
    rng_assign_mismatches: tuple[RngAssign, ...] = ()

    def self_call_names(self) -> tuple[str, ...]:
        return tuple(
            call.target[0] for call in self.calls if call.kind == "self"
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "params": list(self.params),
            "is_method": self.is_method,
            "has_vararg": self.has_vararg,
            "has_kwarg": self.has_kwarg,
            "decorators": list(self.decorators),
            "self_writes": [w.to_dict() for w in self.self_writes],
            "param_mutations": [w.to_dict() for w in self.param_mutations],
            "returns_params": list(self.returns_params),
            "bump_formula": formula_to_json(self.bump_formula),
            "calls": [c.to_dict() for c in self.calls],
            "rng_assign_mismatches": [
                r.to_dict() for r in self.rng_assign_mismatches
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FunctionSummary":
        return cls(
            name=data["name"],
            lineno=int(data["lineno"]),
            params=tuple(data["params"]),
            is_method=bool(data["is_method"]),
            has_vararg=bool(data["has_vararg"]),
            has_kwarg=bool(data["has_kwarg"]),
            decorators=tuple(data["decorators"]),
            self_writes=tuple(
                WriteSite.from_dict(w) for w in data["self_writes"]
            ),
            param_mutations=tuple(
                WriteSite.from_dict(w) for w in data["param_mutations"]
            ),
            returns_params=tuple(data["returns_params"]),
            bump_formula=_formula_from_json(data["bump_formula"]),
            calls=tuple(CallSite.from_dict(c) for c in data["calls"]),
            rng_assign_mismatches=tuple(
                RngAssign.from_dict(r) for r in data["rng_assign_mismatches"]
            ),
        )


def _formula_from_json(value: Formula) -> Formula:
    """Normalise a JSON-loaded formula back to tuples for hashing."""
    if isinstance(value, list):
        return tuple(_formula_from_json(part) for part in value)
    return value


def formula_to_json(value: Formula) -> Formula:
    if isinstance(value, tuple):
        return [formula_to_json(part) for part in value]
    return value


@dataclass(frozen=True)
class ClassSummary:
    """A class: resolved bases, markers, attributes, and methods."""

    name: str
    lineno: int
    #: Base expressions resolved to dotted names where possible
    #: (``"repro.protocols.ProtocolAdapter"``), bare names otherwise.
    bases: tuple[str, ...] = ()
    #: ``# repro: versioned`` marker on (or above) the class line.
    versioned: bool = False
    #: Class-level attributes assigned a value (bare annotations excluded).
    class_attrs: tuple[str, ...] = ()
    #: ``(name, repr(value), lineno)`` for class attributes assigned a
    #: simple constant — lets rules validate attribute *values* (NG603's
    #: ``supports_incremental_check`` must be a bool literal).
    class_attr_literals: tuple[tuple[str, str, int], ...] = ()
    methods: dict[str, FunctionSummary] = field(default_factory=dict)

    @property
    def has_abstract_methods(self) -> bool:
        return any(
            "abstractmethod" in m.decorators for m in self.methods.values()
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "lineno": self.lineno,
            "bases": list(self.bases),
            "versioned": self.versioned,
            "class_attrs": list(self.class_attrs),
            "class_attr_literals": [
                [name, value, lineno]
                for name, value, lineno in self.class_attr_literals
            ],
            "methods": {
                name: fn.to_dict() for name, fn in sorted(self.methods.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ClassSummary":
        return cls(
            name=data["name"],
            lineno=int(data["lineno"]),
            bases=tuple(data["bases"]),
            versioned=bool(data["versioned"]),
            class_attrs=tuple(data["class_attrs"]),
            class_attr_literals=tuple(
                (name, value, int(lineno))
                for name, value, lineno in data.get("class_attr_literals", [])
            ),
            methods={
                name: FunctionSummary.from_dict(fn)
                for name, fn in data["methods"].items()
            },
        )


@dataclass(frozen=True)
class ModuleSummary:
    """One module's slice of the index (the unit of cache reuse)."""

    display_path: str
    module: str  #: dotted module name (or fixture-directive override)
    sha: str  #: content hash of the source the summary was built from
    #: Local alias → imported module (absolute dotted path).
    import_modules: dict[str, str] = field(default_factory=dict)
    #: Local alias → (absolute module, original name).
    import_names: dict[str, tuple[str, str]] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    #: Feed for NG301: identifiers typed/assigned as set/frozenset.
    set_idents: tuple[str, ...] = ()
    #: Feed for NG303: identifiers annotated ``dict[tuple[...], ...]``.
    tuple_dict_idents: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "display_path": self.display_path,
            "module": self.module,
            "sha": self.sha,
            "import_modules": dict(sorted(self.import_modules.items())),
            "import_names": {
                local: list(target)
                for local, target in sorted(self.import_names.items())
            },
            "functions": {
                name: fn.to_dict()
                for name, fn in sorted(self.functions.items())
            },
            "classes": {
                name: c.to_dict() for name, c in sorted(self.classes.items())
            },
            "set_idents": list(self.set_idents),
            "tuple_dict_idents": list(self.tuple_dict_idents),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ModuleSummary":
        return cls(
            display_path=data["display_path"],
            module=data["module"],
            sha=data["sha"],
            import_modules=dict(data["import_modules"]),
            import_names={
                local: (target[0], target[1])
                for local, target in data["import_names"].items()
            },
            functions={
                name: FunctionSummary.from_dict(fn)
                for name, fn in data["functions"].items()
            },
            classes={
                name: ClassSummary.from_dict(c)
                for name, c in data["classes"].items()
            },
            set_idents=tuple(data["set_idents"]),
            tuple_dict_idents=tuple(data["tuple_dict_idents"]),
        )
