"""The NG6xx interprocedural rule family, built on the semantic index.

Unlike the NG1xx–NG5xx per-module AST visitors, these rules see the
whole scanned tree at once: the class-resolution map, the approximate
call graph, and the per-function dataflow summaries.  Each finding
carries a ``why`` call path (rendered by ``repro lint --why``) so a
violation three calls away from its write site is still actionable.

The two contracts these rules referee are the ones the incremental
sanitizer (PR 8) runs on trust:

* **versioned containers** — every state-writing method of `Mempool`,
  `UtxoSet`, or any ``# repro: versioned`` class must bump
  ``self.version`` on every path, or the dirty-set tracker silently
  skips a stale node (NG601);
* **checker purity** — `InvariantChecker` hooks must be read-only, or
  checking perturbs the very run it is certifying (NG602).

NG603 and NG604 guard the surfaces ROADMAP items 3–4 are about to
grow: the `ProtocolAdapter` plug-in protocol and the named-RNG-stream
discipline.
"""

from __future__ import annotations

from typing import Mapping

from ..findings import Finding
from ..rules import LintRule, register
from .extract import rng_stream_tag
from .index import FunctionKey, SemanticIndex
from .model import (
    ArgInfo,
    CallSite,
    ClassSummary,
    Formula,
    FunctionSummary,
    ModuleSummary,
)

#: Class names that are version-tracked even without the marker.
VERSIONED_CLASS_NAMES = frozenset({"Mempool", "UtxoSet"})

CHECKER_BASES = frozenset(
    {"repro.sanitizer.checkers.InvariantChecker", "InvariantChecker"}
)
#: Hook methods the sanitizer invokes; all must be read-only.
CHECKER_HOOKS = ("check_block", "check_dirty", "check_state", "on_event")

ADAPTER_BASES = frozenset(
    {"repro.protocols.ProtocolAdapter", "ProtocolAdapter"}
)
#: Required keyword surface per adapter-protocol method.
ADAPTER_CONTRACT: dict[str, tuple[str, ...]] = {
    "build_nodes": ("config", "sim", "network", "log", "shares"),
    "invariant_checkers": ("mode",),
    "current_leader": ("nodes",),
    "on_crash": ("node", "sim", "network"),
    "on_restart": ("node", "sim", "network"),
    "resync": ("node", "sim", "network"),
}
#: What an *unscanned* ProtocolAdapter base is assumed to provide
#: (its concrete defaults) — so fixtures lint identically alone.
ADAPTER_BASE_DEFAULTS = frozenset(
    {
        "current_leader",
        "invariant_checkers",
        "on_crash",
        "on_restart",
        "resync",
        "supports_incremental_check",
    }
)


class SemanticRule(LintRule):
    """One project-wide rule over the :class:`SemanticIndex`.

    Subclasses implement :meth:`check`; the engine runs each semantic
    rule once per lint invocation (not once per module) and routes the
    findings through the same suppression/baseline machinery as the
    AST rules.
    """

    def check(
        self, index: SemanticIndex, sources: Mapping[str, list[str]]
    ) -> list[Finding]:
        raise NotImplementedError

    def make_finding(
        self,
        *,
        path: str,
        lineno: int,
        message: str,
        sources: Mapping[str, list[str]],
        why: tuple[str, ...] = (),
    ) -> Finding:
        lines = sources.get(path, [])
        snippet = lines[lineno - 1].strip() if 1 <= lineno <= len(lines) else ""
        # Semantic findings anchor on `def`/`class` lines that pure
        # refactors rewrite (and that collide across classes), so they
        # fingerprint on the message — which names the class, method,
        # and parameter/stream, but never a line number.  Baselines
        # then survive both anchor-line rewrites and `why` call-path
        # line shifts.
        return Finding(
            path=path,
            line=lineno,
            col=0,
            code=self.code,
            message=message,
            snippet=snippet,
            why=why,
            identity=message,
        )


def _eval_formula(formula: Formula, bumps: Mapping[str, bool]) -> bool:
    """Evaluate a bump formula against the current bumps assignment."""
    if formula is True:
        return True
    if isinstance(formula, tuple) and formula:
        op = formula[0]
        if op == "call":
            return bumps.get(formula[1], False)
        if op == "and":
            return all(_eval_formula(part, bumps) for part in formula[1:])
        if op == "or":
            return any(_eval_formula(part, bumps) for part in formula[1:])
    return False


def _bind_display_args(
    call: CallSite, callee: FunctionSummary
) -> list[tuple[ArgInfo, str]]:
    """(argument, callee parameter) pairs, self-parameter skipped."""
    params = list(callee.params)
    if callee.is_method and params and params[0] == "self":
        params = params[1:]
    bound: list[tuple[ArgInfo, str]] = []
    for position, arg in enumerate(call.args):
        if position < len(params):
            bound.append((arg, params[position]))
    for name, arg in call.keywords:
        if name in params:
            bound.append((arg, name))
    return bound


@register
class MissingVersionBump(SemanticRule):
    code = "NG601"
    name = "missing-version-bump"
    rationale = (
        "The incremental sanitizer's dirty-set tracker trusts `.version` "
        "counters: a mutator of `Mempool`, `UtxoSet`, or any class "
        "marked `# repro: versioned` that forgets to bump leaves the "
        "container looking clean, so stale nodes silently skip their "
        "invariant checks and audit mode can only catch the omission "
        "probabilistically, per run. This rule solves it statically: it "
        "computes a bump formula per method (does every path write "
        "`self.version`?), closes it over self-calls through the call "
        "graph, and flags any method that writes tracked state on a "
        "path no bump covers."
    )
    bad_example = (
        "class FeeCache:  # repro: versioned\n"
        "    def __init__(self) -> None:\n"
        "        self.fees: dict[bytes, int] = {}\n"
        "        self.version = 0\n"
        "\n"
        "    def record(self, txid: bytes, fee: int) -> None:\n"
        "        self.fees[txid] = fee\n"
    )
    good_example = (
        "class FeeCache:  # repro: versioned\n"
        "    def __init__(self) -> None:\n"
        "        self.fees: dict[bytes, int] = {}\n"
        "        self.version = 0\n"
        "\n"
        "    def record(self, txid: bytes, fee: int) -> None:\n"
        "        self.fees[txid] = fee\n"
        "        self.version += 1\n"
    )

    def check(
        self, index: SemanticIndex, sources: Mapping[str, list[str]]
    ) -> list[Finding]:
        findings: list[Finding] = []
        reported: set[tuple[str, int]] = set()
        for path in sorted(index.modules):
            summary = index.modules[path]
            for class_name in sorted(summary.classes):
                cls = summary.classes[class_name]
                if not (cls.versioned or cls.name in VERSIONED_CLASS_NAMES):
                    continue
                findings.extend(
                    self._check_class(index, summary, cls, sources, reported)
                )
        return findings

    def _check_class(
        self,
        index: SemanticIndex,
        summary: ModuleSummary,
        cls: ClassSummary,
        sources: Mapping[str, list[str]],
        reported: set[tuple[str, int]],
    ) -> list[Finding]:
        resolved, _ = index.base_chain(summary, cls)
        chain = [(summary, cls)] + resolved
        # Visible methods, nearest definition first.
        methods: dict[str, tuple[str, FunctionSummary]] = {}
        for mod, current in chain:
            for method_name, fn in current.methods.items():
                methods.setdefault(method_name, (mod.display_path, fn))

        # Fixpoint 1: which methods definitely bump on every path.
        bumps = {method: False for method in methods}
        changed = True
        while changed:
            changed = False
            for method, (_, fn) in methods.items():
                if not bumps[method] and _eval_formula(fn.bump_formula, bumps):
                    bumps[method] = True
                    changed = True

        # Fixpoint 2: which non-bumping methods let a write escape,
        # directly or through a self-call into an escaping method.
        escapes = {method: False for method in methods}
        changed = True
        while changed:
            changed = False
            for method, (_, fn) in methods.items():
                if escapes[method] or bumps[method] or method == "__init__":
                    continue
                direct = bool(fn.self_writes)
                via = any(
                    escapes.get(callee, False)
                    for callee in fn.self_call_names()
                )
                if direct or via:
                    escapes[method] = True
                    changed = True

        findings: list[Finding] = []
        for method in sorted(escapes):
            if not escapes[method]:
                continue
            path, fn = methods[method]
            if (path, fn.lineno) in reported:
                continue
            reported.add((path, fn.lineno))
            findings.append(
                self.make_finding(
                    path=path,
                    lineno=fn.lineno,
                    message=(
                        f"`{cls.name}.{method}` writes tracked state "
                        "without bumping `self.version` on every path — "
                        "the incremental sanitizer will miss the change"
                    ),
                    sources=sources,
                    why=tuple(self._why(methods, escapes, method)),
                )
            )
        return findings

    def _why(
        self,
        methods: Mapping[str, tuple[str, FunctionSummary]],
        escapes: Mapping[str, bool],
        method: str,
    ) -> list[str]:
        why: list[str] = []
        current = method
        for _ in range(6):
            path, fn = methods[current]
            if fn.self_writes:
                write = fn.self_writes[0]
                why.append(
                    f"{path}:{write.lineno}: `{current}` writes "
                    f"`self.{write.target}`: {write.desc}"
                )
                break
            hop = None
            for call in fn.calls:
                if (
                    call.kind == "self"
                    and call.target
                    and escapes.get(call.target[0], False)
                ):
                    hop = call.target[0]
                    why.append(
                        f"{path}:{call.lineno}: `{current}` calls "
                        f"`self.{hop}(...)`, which writes without bumping"
                    )
                    break
            if hop is None:
                break
            current = hop
        why.append("no `self.version` bump covers this path")
        return why


@register
class ImpureChecker(SemanticRule):
    code = "NG602"
    name = "impure-checker"
    rationale = (
        "Invariant checkers certify a run; a checker hook that mutates "
        "node, mempool, or UTXO state perturbs the very execution it is "
        "checking, so checked and unchecked runs diverge and the "
        "sanitizer's verdict is meaningless. This rule computes each "
        "hook's transitive call-graph footprint and flags any "
        "`check_block`/`check_dirty`/`check_state`/`on_event` "
        "implementation that writes through a parameter, directly or "
        "via calls (container mutators, ledger transitions, and event "
        "scheduling all count). Private per-checker bookkeeping on "
        "`self` stays legal."
    )
    bad_example = (
        "from repro.sanitizer.checkers import InvariantChecker\n"
        "\n"
        "\n"
        "class MempoolPurge(InvariantChecker):\n"
        '    code = "INV901"\n'
        "\n"
        "    def check_state(self, node, node_id, now):\n"
        "        for tx in node.mempool.transactions():\n"
        "            node.mempool.remove(tx.txid)\n"
        "        return []\n"
    )
    good_example = (
        "from repro.sanitizer.checkers import InvariantChecker\n"
        "\n"
        "\n"
        "class MempoolAudit(InvariantChecker):\n"
        '    code = "INV901"\n'
        "\n"
        "    def check_state(self, node, node_id, now):\n"
        "        violations = []\n"
        "        for tx in node.mempool.transactions():\n"
        "            if tx.size < 0:\n"
        "                violations.append(tx.txid)\n"
        "        return violations\n"
    )

    def check(
        self, index: SemanticIndex, sources: Mapping[str, list[str]]
    ) -> list[Finding]:
        findings: list[Finding] = []
        mutated = index.mutated_params()
        for path in sorted(index.modules):
            summary = index.modules[path]
            for class_name in sorted(summary.classes):
                cls = summary.classes[class_name]
                if not index.extends(summary, cls, CHECKER_BASES):
                    continue
                for hook in CHECKER_HOOKS:
                    fn = cls.methods.get(hook)
                    if fn is None:
                        continue
                    key = FunctionKey(path, cls.name, hook)
                    dirty = sorted(
                        param
                        for param in mutated.get(key, {})
                        if param != "self"
                    )
                    if not dirty:
                        continue
                    param = dirty[0]
                    findings.append(
                        self.make_finding(
                            path=path,
                            lineno=fn.lineno,
                            message=(
                                f"checker hook `{cls.name}.{hook}` mutates "
                                f"`{param}` — invariant checkers must be "
                                "read-only or the sanitizer perturbs the "
                                "run it certifies"
                            ),
                            sources=sources,
                            why=tuple(index.witness_chain(key, param)),
                        )
                    )
        return findings


@register
class AdapterSurfaceConformance(SemanticRule):
    code = "NG603"
    name = "adapter-surface-conformance"
    rationale = (
        "Protocol adapters plug into the harness, the sanitizer, and "
        "the fault injector through one surface: `build_nodes`, a "
        "registry `name`, and the lifecycle/checker hooks. A "
        "half-plugged adapter — say one whose `invariant_checkers` "
        "override dropped the `mode` parameter — imports fine and only "
        "fails when incremental checking first calls it mid-run. This "
        "rule checks the full surface statically against the scanned "
        "`ProtocolAdapter` contract, so a new protocol cannot land "
        "partially wired. The `supports_incremental_check` opt-out is "
        "part of that surface: the harness reads it as a plain "
        "attribute and tests truthiness, so a method-valued override "
        "is always truthy (the opt-out silently ignored) and only a "
        "bool literal is an honest declaration."
    )
    bad_example = (
        "from repro.protocols import ProtocolAdapter\n"
        "\n"
        "\n"
        "class OptOutAdapter(ProtocolAdapter):\n"
        '    name = "optout"\n'
        "\n"
        "    def build_nodes(self, config, sim, network, log, shares):\n"
        "        return [], None\n"
        "\n"
        "    def supports_incremental_check(self):\n"
        "        return False\n"
    )
    good_example = (
        "from repro.protocols import ProtocolAdapter\n"
        "\n"
        "\n"
        "class OptOutAdapter(ProtocolAdapter):\n"
        '    name = "optout"\n'
        "    supports_incremental_check = False\n"
        "\n"
        "    def build_nodes(self, config, sim, network, log, shares):\n"
        "        return [], None\n"
    )

    def check(
        self, index: SemanticIndex, sources: Mapping[str, list[str]]
    ) -> list[Finding]:
        findings: list[Finding] = []
        reported: set[tuple[str, int, str]] = set()
        for path in sorted(index.modules):
            summary = index.modules[path]
            for class_name in sorted(summary.classes):
                cls = summary.classes[class_name]
                if not index.extends(summary, cls, ADAPTER_BASES):
                    continue
                if cls.has_abstract_methods:
                    continue  # abstract intermediates are not registrable
                findings.extend(
                    self._check_adapter(index, summary, cls, sources, reported)
                )
        return findings

    def _check_adapter(
        self,
        index: SemanticIndex,
        summary: ModuleSummary,
        cls: ClassSummary,
        sources: Mapping[str, list[str]],
        reported: set[tuple[str, int, str]],
    ) -> list[Finding]:
        resolved, unresolved = index.base_chain(summary, cls)
        chain = [(summary, cls)] + resolved

        provided: set[str] = set()
        attrs: set[str] = set()
        for mod, current in chain:
            for method_name, fn in current.methods.items():
                if "abstractmethod" not in fn.decorators:
                    provided.add(method_name)
            attrs.update(current.class_attrs)
        unknown_bases: list[str] = []
        for base in unresolved:
            if base.rpartition(".")[2] == "ProtocolAdapter":
                # Unscanned contract base: assume its concrete defaults.
                provided |= ADAPTER_BASE_DEFAULTS
            else:
                unknown_bases.append(base)

        findings: list[Finding] = []

        def emit(path: str, lineno: int, message: str, why: tuple[str, ...]) -> None:
            ident = (path, lineno, message)
            if ident in reported:
                return
            reported.add(ident)
            findings.append(
                self.make_finding(
                    path=path, lineno=lineno, message=message,
                    sources=sources, why=why,
                )
            )

        origin = f"{summary.display_path}:{cls.lineno}"
        if not unknown_bases:
            if "build_nodes" not in provided:
                emit(
                    summary.display_path,
                    cls.lineno,
                    f"adapter `{cls.name}` does not implement "
                    "`build_nodes(config, sim, network, log, shares)`",
                    (f"{origin}: `{cls.name}` extends ProtocolAdapter "
                     "but leaves `build_nodes` abstract",),
                )
            if "name" not in attrs and "name" not in provided:
                emit(
                    summary.display_path,
                    cls.lineno,
                    f"adapter `{cls.name}` does not define a registry "
                    "`name` class attribute",
                    (f"{origin}: `register_adapter` keys adapters by "
                     "their `name`",),
                )

        for method, required in sorted(ADAPTER_CONTRACT.items()):
            for mod, current in chain:
                if method not in current.methods:
                    continue
                if current.name == "ProtocolAdapter":
                    break  # the contract's own default conforms
                fn = current.methods[method]
                if "abstractmethod" in fn.decorators:
                    break
                missing = [p for p in required if p not in fn.params]
                if fn.has_vararg or fn.has_kwarg:
                    missing = []
                if missing:
                    emit(
                        mod.display_path,
                        fn.lineno,
                        f"adapter `{cls.name}`: `{method}()` must accept "
                        f"({', '.join(required)}) — missing "
                        f"{', '.join(f'`{p}`' for p in missing)}",
                        (
                            f"{mod.display_path}:{fn.lineno}: `{current.name}"
                            f".{method}` overrides the adapter contract "
                            f"without `{missing[0]}`",
                            "the harness and sanitizer call this hook with "
                            "the full contract signature",
                        ),
                    )
                break

        # The incremental opt-out (PR 8): the harness reads
        # `supports_incremental_check` with `getattr(adapter, ..., True)`
        # and tests truthiness, so only a bool class attribute works —
        # a method is a bound-method object (always truthy), and a
        # non-bool value misdeclares the contract.  Judge the nearest
        # definition on the chain; the contract class's own
        # `ClassVar[bool] = True` default conforms.
        attr = "supports_incremental_check"
        for mod, current in chain:
            if current.name == "ProtocolAdapter":
                break
            fn = current.methods.get(attr)
            if fn is not None:
                emit(
                    mod.display_path,
                    fn.lineno,
                    f"adapter `{cls.name}`: `{attr}` must be a bool "
                    "class attribute, not a method — the harness reads "
                    "it as an attribute, and a bound method is always "
                    "truthy, so the opt-out is silently ignored",
                    (
                        f"{mod.display_path}:{fn.lineno}: `{current.name}"
                        f".{attr}` is defined as a method",
                        "the harness tests `getattr(adapter, "
                        f"'{attr}', True)` for truthiness without "
                        "calling it",
                    ),
                )
                break
            literal = next(
                (
                    entry
                    for entry in current.class_attr_literals
                    if entry[0] == attr
                ),
                None,
            )
            if literal is not None:
                _, value, lineno = literal
                if value not in ("True", "False"):
                    emit(
                        mod.display_path,
                        lineno,
                        f"adapter `{cls.name}`: `{attr}` must be the "
                        f"bool literal `True` or `False`, not {value} — "
                        "the harness tests its truthiness to pick the "
                        "sweep strategy",
                        (
                            f"{mod.display_path}:{lineno}: `{current.name}"
                            f".{attr}` is assigned {value}",
                            "a non-bool value obscures whether the "
                            "adapter's checkers tolerate incremental "
                            "sweeps",
                        ),
                    )
                break
            if attr in current.class_attrs:
                break  # non-literal assignment: not judged statically
        return findings


@register
class RngStreamProvenance(SemanticRule):
    code = "NG604"
    name = "rng-stream-provenance"
    rationale = (
        "Determinism here rests on named RNG streams: the topology "
        "stream must never absorb draws that belong to the latency "
        "stream, or adding one draw anywhere reshuffles every stream "
        "downstream and runs stop replaying. NG1xx checks each draw "
        "site locally; this rule follows RNG instances through "
        "assignments and resolved calls, and flags an RNG created for "
        "one named stream (`topo_rng`) flowing into a parameter or "
        "variable that claims another (`latency_rng`). Generic names "
        "(`rng`) carry no claim and never match."
    )
    bad_example = (
        "import random\n"
        "\n"
        "\n"
        "def jitter(latency_rng: random.Random) -> float:\n"
        "    return latency_rng.random()\n"
        "\n"
        "\n"
        "def sample(seed: int) -> float:\n"
        "    topo_rng = random.Random(seed * 11 + 3)\n"
        "    return jitter(topo_rng)\n"
    )
    good_example = (
        "import random\n"
        "\n"
        "\n"
        "def jitter(latency_rng: random.Random) -> float:\n"
        "    return latency_rng.random()\n"
        "\n"
        "\n"
        "def sample(seed: int) -> float:\n"
        "    latency_rng = random.Random(seed * 11 + 3)\n"
        "    return jitter(latency_rng)\n"
    )

    def check(
        self, index: SemanticIndex, sources: Mapping[str, list[str]]
    ) -> list[Finding]:
        findings: list[Finding] = []
        for summary, cls, fn in index.iter_functions():
            path = summary.display_path
            for mismatch in fn.rng_assign_mismatches:
                findings.append(
                    self.make_finding(
                        path=path,
                        lineno=mismatch.lineno,
                        message=(
                            f"RNG `{mismatch.value}` (stream "
                            f"'{mismatch.value_tag}') assigned to "
                            f"`{mismatch.target}` (stream "
                            f"'{mismatch.target_tag}') — streams must "
                            "not cross"
                        ),
                        sources=sources,
                        why=(
                            f"{path}:{mismatch.lineno}: `{mismatch.value}` "
                            f"was created for stream "
                            f"'{mismatch.value_tag}' but now feeds "
                            f"'{mismatch.target_tag}' draw sites",
                        ),
                    )
                )
            for call in fn.calls:
                resolved = index.resolve_call(
                    summary, cls, call.kind, call.target
                )
                if resolved is None:
                    continue
                callee_key, callee_fn = resolved
                for arg, param in _bind_display_args(call, callee_fn):
                    if arg.rng_tag is None:
                        continue
                    param_tag = rng_stream_tag(param)
                    if param_tag is None or param_tag == arg.rng_tag:
                        continue
                    findings.append(
                        self.make_finding(
                            path=path,
                            lineno=call.lineno,
                            message=(
                                f"RNG `{arg.display}` (stream "
                                f"'{arg.rng_tag}') flows into "
                                f"`{callee_key.pretty()}` parameter "
                                f"`{param}` owned by stream "
                                f"'{param_tag}'"
                            ),
                            sources=sources,
                            why=(
                                f"{path}:{call.lineno}: `{arg.display}` "
                                f"bound to parameter `{param}` of "
                                f"`{callee_key.pretty()}`",
                                f"{callee_key.display_path}:"
                                f"{callee_fn.lineno}: "
                                f"`{callee_key.pretty()}` attributes its "
                                f"draws to stream '{param_tag}'",
                            ),
                        )
                    )
        return findings
