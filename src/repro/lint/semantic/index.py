"""The project-wide semantic index: assembly, resolution, and caching.

A :class:`SemanticIndex` is the union of every scanned module's
:class:`~repro.lint.semantic.model.ModuleSummary` plus the cross-module
machinery the NG6xx rules need:

* dotted-module lookup and a scanned-base-chain walk (an approximate
  MRO: DFS over resolved base names, restricted to scanned classes);
* call-site resolution into ``(module, class | None, function)`` owners;
* a project-wide *param-mutation fixpoint*: which parameters of which
  functions are mutated, directly or transitively through resolved call
  edges, each with a witness chain for ``--why``.

The index is cached on disk as one JSON document keyed by per-module
content hashes: a lint run reuses every summary whose source hash is
unchanged and re-extracts only edited modules, which is what keeps
``repro lint`` inside its wall-clock budget on warm runs.  The JSON
rendering is deterministic (sorted keys, stable per-module ordering) —
a test pins it byte-identical across runs.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator

from .extract import content_sha, extract_module
from .model import ClassSummary, FunctionSummary, ModuleSummary, ParamRef

#: Bump when summary extraction or the serialized shape changes: a
#: version mismatch discards the whole cache rather than mixing schemas.
#: v2: class summaries carry ``class_attr_literals``.
INDEX_VERSION = 2


@dataclass(frozen=True)
class FunctionKey:
    """Stable identity of one function in the index."""

    display_path: str
    class_name: str | None
    function: str

    def pretty(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.function}"
        return self.function


@dataclass(frozen=True)
class MutationWitness:
    """Why a parameter counts as mutated: a direct write or a call edge."""

    kind: str  #: ``"direct"`` or ``"via"``
    display_path: str
    lineno: int
    desc: str  #: source line (direct) or callee description (via)
    #: For ``via``: the callee's (key, param) the mutation flows from.
    callee: FunctionKey | None = None
    callee_param: str | None = None


@dataclass
class SemanticIndex:
    """Project-wide symbol/call-graph/dataflow index for one lint run."""

    modules: dict[str, ModuleSummary] = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    def __post_init__(self) -> None:
        self._by_module_name: dict[str, ModuleSummary] = {}
        for path in sorted(self.modules):
            summary = self.modules[path]
            self._by_module_name.setdefault(summary.module, summary)
        self._mutated: dict[FunctionKey, dict[str, MutationWitness]] | None = None

    # -- lookup --------------------------------------------------------------

    def module_named(self, dotted: str) -> ModuleSummary | None:
        return self._by_module_name.get(dotted)

    def function_at(self, key: FunctionKey) -> FunctionSummary | None:
        summary = self.modules.get(key.display_path)
        if summary is None:
            return None
        if key.class_name is None:
            return summary.functions.get(key.function)
        cls = summary.classes.get(key.class_name)
        if cls is None:
            return None
        return cls.methods.get(key.function)

    def iter_functions(
        self,
    ) -> Iterator[tuple[ModuleSummary, ClassSummary | None, FunctionSummary]]:
        """Every function and method, in deterministic order."""
        for path in sorted(self.modules):
            summary = self.modules[path]
            for name in sorted(summary.functions):
                yield summary, None, summary.functions[name]
            for class_name in sorted(summary.classes):
                cls = summary.classes[class_name]
                for method_name in sorted(cls.methods):
                    yield summary, cls, cls.methods[method_name]

    # -- class hierarchy -----------------------------------------------------

    def base_chain(
        self, summary: ModuleSummary, cls: ClassSummary
    ) -> tuple[list[tuple[ModuleSummary, ClassSummary]], list[str]]:
        """Scanned ancestors (DFS, nearest first) and unresolved bases.

        A base resolves when its dotted (or bare, same-module) name
        names a scanned class; anything else — stdlib bases, unscanned
        third-party classes — lands in the unresolved list so rules can
        degrade conservatively.
        """
        resolved: list[tuple[ModuleSummary, ClassSummary]] = []
        unresolved: list[str] = []
        seen: set[tuple[str, str]] = {(summary.display_path, cls.name)}
        stack: list[tuple[ModuleSummary, ClassSummary]] = [(summary, cls)]
        while stack:
            mod, current = stack.pop(0)
            for base in current.bases:
                found = self._find_class(base, mod)
                if found is None:
                    unresolved.append(base)
                    continue
                base_mod, base_cls = found
                ident = (base_mod.display_path, base_cls.name)
                if ident in seen:
                    continue
                seen.add(ident)
                resolved.append(found)
                stack.append(found)
        return resolved, unresolved

    def _find_class(
        self, base: str, referrer: ModuleSummary
    ) -> tuple[ModuleSummary, ClassSummary] | None:
        if "." in base:
            module, _, name = base.rpartition(".")
            target = self.module_named(module)
            if target is not None and name in target.classes:
                return target, target.classes[name]
            return None
        if base in referrer.classes:
            return referrer, referrer.classes[base]
        return None

    def extends(
        self, summary: ModuleSummary, cls: ClassSummary, targets: frozenset[str]
    ) -> bool:
        """Whether any (transitive) base name matches ``targets``.

        Matches both resolved dotted names and bare unresolved names,
        so fixtures importing the real base and the real tree both hit.
        """
        if cls.name in targets:
            return False  # the contract class itself is not a subject
        resolved, unresolved = self.base_chain(summary, cls)
        for base_mod, base_cls in resolved:
            dotted = f"{base_mod.module}.{base_cls.name}"
            if dotted in targets or base_cls.name in targets:
                return True
        for base in unresolved:
            bare = base.rpartition(".")[2]
            if base in targets or bare in targets:
                return True
        return False

    def resolve_method(
        self, summary: ModuleSummary, cls: ClassSummary, method: str
    ) -> tuple[FunctionKey, FunctionSummary] | None:
        """Find ``method`` on the class or its scanned ancestors."""
        if method in cls.methods:
            key = FunctionKey(summary.display_path, cls.name, method)
            return key, cls.methods[method]
        resolved, _ = self.base_chain(summary, cls)
        for base_mod, base_cls in resolved:
            if method in base_cls.methods:
                key = FunctionKey(
                    base_mod.display_path, base_cls.name, method
                )
                return key, base_cls.methods[method]
        return None

    # -- call resolution -----------------------------------------------------

    def resolve_call(
        self,
        summary: ModuleSummary,
        cls: ClassSummary | None,
        kind: str,
        target: tuple[str, ...],
    ) -> tuple[FunctionKey, FunctionSummary] | None:
        """Resolve a classified call site to a scanned function.

        Calls into classes resolve to their ``__init__`` (constructor
        argument mutation is still mutation); unknown kinds and
        unscanned targets return ``None`` — the analyses skip them.
        """
        if kind == "self" and cls is not None:
            return self.resolve_method(summary, cls, target[0])
        if kind == "local":
            name = target[0]
            if name in summary.functions:
                return (
                    FunctionKey(summary.display_path, None, name),
                    summary.functions[name],
                )
            if name in summary.classes:
                return self.resolve_method(
                    summary, summary.classes[name], "__init__"
                )
            return None
        if kind in ("import", "module"):
            module_name, name = target
            target_mod = self.module_named(module_name)
            if target_mod is None:
                return None
            if name in target_mod.functions:
                return (
                    FunctionKey(target_mod.display_path, None, name),
                    target_mod.functions[name],
                )
            if name in target_mod.classes:
                return self.resolve_method(
                    target_mod, target_mod.classes[name], "__init__"
                )
        return None

    # -- public queries (consumed by repro.mutate and external tooling) ------

    def classes_extending(
        self, targets: frozenset[str]
    ) -> list[tuple[ModuleSummary, ClassSummary]]:
        """Every scanned class whose (transitive) base matches ``targets``.

        The match semantics are :meth:`extends` — resolved dotted names
        and bare unresolved names both count — and the result is in
        deterministic (path, class) order.
        """
        found: list[tuple[ModuleSummary, ClassSummary]] = []
        for path in sorted(self.modules):
            summary = self.modules[path]
            for class_name in sorted(summary.classes):
                cls = summary.classes[class_name]
                if self.extends(summary, cls, targets):
                    found.append((summary, cls))
        return found

    def versioned_classes(
        self, extra_names: frozenset[str] = frozenset()
    ) -> list[tuple[ModuleSummary, ClassSummary]]:
        """Classes under the NG601 version-bump contract.

        A class qualifies via the ``# repro: versioned`` marker or by
        appearing in ``extra_names`` (the rule's built-in
        ``Mempool``/``UtxoSet`` set).  Deterministic order.
        """
        found: list[tuple[ModuleSummary, ClassSummary]] = []
        for path in sorted(self.modules):
            summary = self.modules[path]
            for class_name in sorted(summary.classes):
                cls = summary.classes[class_name]
                if cls.versioned or cls.name in extra_names:
                    found.append((summary, cls))
        return found

    def class_surface(
        self, summary: ModuleSummary, cls: ClassSummary
    ) -> list[FunctionKey]:
        """Every method visible on ``cls``: own and scanned-ancestor.

        Keys point at the *defining* class, nearest definition first,
        so overridden ancestor methods are not duplicated.
        """
        keys: list[FunctionKey] = []
        seen: set[str] = set()
        resolved, _ = self.base_chain(summary, cls)
        for mod, current in [(summary, cls)] + resolved:
            for method_name in sorted(current.methods):
                if method_name in seen:
                    continue
                seen.add(method_name)
                keys.append(
                    FunctionKey(mod.display_path, current.name, method_name)
                )
        return keys

    def reachable_functions(
        self,
        roots: Iterable[FunctionKey],
        *,
        instantiate_closure: bool = True,
    ) -> set[FunctionKey]:
        """Functions reachable from ``roots`` over resolved call edges.

        The static call graph cannot see simulator-dispatched calls
        (``build_nodes`` hands node objects to the event loop, which
        invokes their methods by name at runtime), so with
        ``instantiate_closure`` a call that resolves into a class
        ``__init__`` marks *every* method of that class (and its scanned
        ancestors) reachable — the object escaped, anything on it may
        run.  This is the reachability the mutation engine keys on:
        over-approximate in the direction of more mutation sites.
        """
        work: list[FunctionKey] = list(roots)
        reached: set[FunctionKey] = set()
        while work:
            key = work.pop()
            if key in reached:
                continue
            fn = self.function_at(key)
            if fn is None:
                continue
            reached.add(key)
            summary = self.modules[key.display_path]
            cls = (
                summary.classes.get(key.class_name)
                if key.class_name
                else None
            )
            for call in fn.calls:
                resolved = self.resolve_call(
                    summary, cls, call.kind, call.target
                )
                if resolved is None:
                    continue
                callee_key, _callee_fn = resolved
                work.append(callee_key)
                if (
                    instantiate_closure
                    and callee_key.class_name is not None
                    and callee_key.function == "__init__"
                ):
                    owner = self.modules.get(callee_key.display_path)
                    if owner is None:
                        continue
                    owner_cls = owner.classes.get(callee_key.class_name)
                    if owner_cls is None:
                        continue
                    work.extend(self.class_surface(owner, owner_cls))
        return reached

    # -- harvests (NG301 / NG303 feeds) --------------------------------------

    def set_identifiers(self) -> frozenset[str]:
        names: set[str] = set()
        for summary in self.modules.values():
            names.update(summary.set_idents)
        return frozenset(names)

    def tuple_dict_identifiers(self) -> frozenset[str]:
        names: set[str] = set()
        for summary in self.modules.values():
            names.update(summary.tuple_dict_idents)
        return frozenset(names)

    # -- param-mutation fixpoint ---------------------------------------------

    def mutated_params(self) -> dict[FunctionKey, dict[str, MutationWitness]]:
        """Which parameters each function mutates, transitively.

        Seeds are each function's direct ``param_mutations``; edges are
        resolved call sites whose argument taint roots in a caller
        parameter.  Propagation iterates to a fixpoint (monotone, so it
        terminates); each entry keeps the *first* witness found, which
        the deterministic iteration order makes stable.
        """
        if self._mutated is not None:
            return self._mutated
        mutated: dict[FunctionKey, dict[str, MutationWitness]] = {}
        for summary, cls, fn in self.iter_functions():
            key = FunctionKey(
                summary.display_path, cls.name if cls else None, fn.name
            )
            for write in fn.param_mutations:
                mutated.setdefault(key, {}).setdefault(
                    write.target,
                    MutationWitness(
                        "direct", summary.display_path, write.lineno,
                        write.desc,
                    ),
                )

        # (caller, caller_param) ← (callee, callee_param) edges.
        edges: list[tuple[FunctionKey, str, FunctionKey, str, int]] = []
        for summary, cls, fn in self.iter_functions():
            caller = FunctionKey(
                summary.display_path, cls.name if cls else None, fn.name
            )
            for call in fn.calls:
                resolved = self.resolve_call(summary, cls, call.kind,
                                             call.target)
                if resolved is None:
                    continue
                callee_key, callee_fn = resolved
                for taint, param in _bind_call_args(call, callee_fn):
                    if taint.root == "self" or taint.root not in fn.params:
                        continue
                    edges.append(
                        (caller, taint.root, callee_key, param, call.lineno)
                    )

        changed = True
        while changed:
            changed = False
            for caller, caller_param, callee, callee_param, lineno in edges:
                if callee_param not in mutated.get(callee, {}):
                    continue
                slot = mutated.setdefault(caller, {})
                if caller_param not in slot:
                    slot[caller_param] = MutationWitness(
                        "via",
                        caller.display_path,
                        lineno,
                        f"{callee.pretty()}(… {callee_param} …)",
                        callee=callee,
                        callee_param=callee_param,
                    )
                    changed = True
        self._mutated = mutated
        return mutated

    def witness_chain(
        self, key: FunctionKey, param: str, limit: int = 8
    ) -> list[str]:
        """Human-readable call path explaining a mutated parameter."""
        mutated = self.mutated_params()
        chain: list[str] = []
        seen: set[tuple[str, str | None, str, str]] = set()
        current_key, current_param = key, param
        while len(chain) < limit:
            witness = mutated.get(current_key, {}).get(current_param)
            if witness is None:
                break
            ident = (
                current_key.display_path,
                current_key.class_name,
                current_key.function,
                current_param,
            )
            if ident in seen:
                break
            seen.add(ident)
            if witness.kind == "direct":
                chain.append(
                    f"{witness.display_path}:{witness.lineno}: "
                    f"`{current_key.pretty()}` writes `{current_param}`: "
                    f"{witness.desc}"
                )
                break
            assert witness.callee is not None
            assert witness.callee_param is not None
            chain.append(
                f"{witness.display_path}:{witness.lineno}: "
                f"`{current_key.pretty()}` passes `{current_param}` to "
                f"`{witness.callee.pretty()}` as `{witness.callee_param}`"
            )
            current_key, current_param = witness.callee, witness.callee_param
        return chain

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        payload: dict[str, Any] = {
            "version": INDEX_VERSION,
            "modules": {
                path: self.modules[path].to_dict()
                for path in sorted(self.modules)
            },
        }
        return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def _bind_call_args(
    call: Any, callee: FunctionSummary
) -> list[tuple[ParamRef, str]]:
    """(argument taint, callee parameter) pairs for one resolved call."""
    params = list(callee.params)
    if callee.is_method and params and params[0] == "self":
        params = params[1:]
    bound: list[tuple[ParamRef, str]] = []
    for index, arg in enumerate(call.args):
        if arg.taint is None:
            continue
        if index < len(params):
            bound.append((arg.taint, params[index]))
    for name, arg in call.keywords:
        if arg.taint is not None and name in params:
            bound.append((arg.taint, name))
    return bound


# -- build + cache -----------------------------------------------------------


def load_cache(path: Path) -> dict[str, ModuleSummary]:
    """Cached module summaries by display path ({} on any mismatch)."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return {}
    if not isinstance(data, dict) or data.get("version") != INDEX_VERSION:
        return {}
    cached: dict[str, ModuleSummary] = {}
    try:
        for key, entry in data.get("modules", {}).items():
            cached[key] = ModuleSummary.from_dict(entry)
    except (KeyError, TypeError, ValueError):
        return {}
    return cached


def build_index(
    parsed: list[tuple[str, str, ast.Module, list[str], str]],
    *,
    cache_path: Path | None = None,
) -> SemanticIndex:
    """Assemble the index for ``parsed`` modules, reusing cached summaries.

    ``parsed`` entries are ``(display_path, module, tree, lines,
    source)`` tuples.  With a ``cache_path``, summaries whose content
    hash matches the cache are reused without re-extraction and the
    refreshed cache is written back (best-effort — an unwritable cache
    never fails the lint run).
    """
    cached: dict[str, ModuleSummary] = {}
    if cache_path is not None and cache_path.exists():
        cached = load_cache(cache_path)

    modules: dict[str, ModuleSummary] = {}
    hits = 0
    misses = 0
    for display_path, module, tree, lines, source in parsed:
        sha = content_sha(source)
        existing = cached.get(display_path)
        if existing is not None and existing.sha == sha:
            modules[display_path] = existing
            hits += 1
            continue
        modules[display_path] = extract_module(
            tree,
            display_path=display_path,
            module=module,
            lines=lines,
            sha=sha,
        )
        misses += 1

    index = SemanticIndex(
        modules=modules, cache_hits=hits, cache_misses=misses
    )
    if cache_path is not None:
        try:
            cache_path.parent.mkdir(parents=True, exist_ok=True)
            cache_path.write_text(index.to_json(), encoding="utf-8")
        except OSError:
            pass
    return index
