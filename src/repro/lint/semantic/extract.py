"""Per-module extraction: AST → :class:`ModuleSummary`.

One pass over each module builds the symbol tables and, per function, a
dataflow summary: which ``self`` attributes it writes, which parameters
it mutates (directly or through attribute chains), which parameters its
return value derives from, whether every path bumps ``self.version``,
and every call site classified for later resolution.

The analyses are deliberately approximate, always in the direction that
*under*-reports:

* **Taint** tracks roots through assignment, attribute access,
  subscripting, ``getattr(x, "literal")``, for-loop targets, and
  same-module call-return (via ``returns_params``); it does not follow
  values through containers or cross-module returns.
* **Bump formulas** are lenient: a statement sequence "definitely
  bumps" if *any* statement in order is covering — a direct
  ``self.version`` write, or a self-call whose callee definitely bumps
  (resolved later against the class).  ``if`` requires both branches to
  cover (a missing ``else`` never covers); loop bodies count as if they
  run, so the common "mutate + bump inside the same loop" shape passes.
  Early ``return``\\ s are ignored on purpose: guard clauses like
  ``if tx is None: return None`` exit *before* any write, so demanding
  a bump on that path would be a false positive.
* **Mutation** is keyed on a name set (:data:`MUTATING_METHODS`) plus
  assignment/del through tainted roots; reads never count.
"""

from __future__ import annotations

import ast
import hashlib

from .model import (
    ArgInfo,
    CallSite,
    ClassSummary,
    Formula,
    FunctionSummary,
    ModuleSummary,
    ParamRef,
    RngAssign,
    WriteSite,
)

#: Method names whose invocation on a tainted root counts as a write:
#: container mutators, ledger state transitions, and simulation side
#: effects (a checker scheduling an event perturbs the run as surely as
#: a state write would).
MUTATING_METHODS = frozenset(
    {
        # container mutators
        "add", "append", "clear", "discard", "extend", "insert", "pop",
        "popitem", "remove", "reverse", "setdefault", "sort", "update",
        # ledger / node state transitions
        "apply", "undo", "credit", "seed", "evict_conflicts",
        # simulation side effects
        "push", "push_batch", "schedule", "schedule_at", "schedule_batch",
        "send", "broadcast", "announce", "abdicate", "reset_relay_state",
    }
)

#: Marker registering a class with NG601: every mutator must bump
#: ``.version``.  Recognised on the ``class`` line or the line above.
VERSIONED_MARKER = "# repro: versioned"

_RNG_GENERIC = frozenset({"rng"})


def rng_stream_tag(name: str | None) -> str | None:
    """The RNG stream a name claims: ``topo_rng`` → ``"topo"``.

    Plain ``rng`` (and dotted tails like ``sim.rng``) are generic —
    they carry no stream claim, so they never participate in NG604
    mismatches.
    """
    if not name:
        return None
    base = name.rsplit(".", 1)[-1].lstrip("_")
    if base in _RNG_GENERIC:
        return None
    if base.endswith("_rng") and len(base) > len("_rng"):
        return base[: -len("_rng")]
    if base.startswith("rng_") and len(base) > len("rng_"):
        return base[len("rng_"):]
    return None


def content_sha(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def _resolve_import_from(module: str, node: ast.ImportFrom) -> str:
    """Absolute dotted module an ``ImportFrom`` refers to."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    base = parts[: len(parts) - node.level]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base)


def _extract_imports(
    tree: ast.Module, module: str
) -> tuple[dict[str, str], dict[str, tuple[str, str]]]:
    """Local alias maps with relative imports resolved to absolute."""
    modules: dict[str, str] = {}
    names: dict[str, tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                modules[local] = target
        elif isinstance(node, ast.ImportFrom):
            origin = _resolve_import_from(module, node)
            for alias in node.names:
                local = alias.asname or alias.name
                names[local] = (origin, alias.name)
    return modules, names


def _dotted_display(node: ast.expr) -> str | None:
    """Source-ish dotted text for Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_display(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def _decorator_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    names = []
    for dec in fn.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, ast.Attribute):
            names.append(target.attr)
    return tuple(names)


# -- set / tuple-dict identifier harvests (feed NG301 / NG303) ---------------


def _annotation_is_setlike(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in (
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
        ):
            return True
    return False


def _annotation_is_tuple_keyed_dict(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("dict", "Dict")
            and isinstance(node.slice, ast.Tuple)
            and node.slice.elts
        ):
            key = node.slice.elts[0]
            for part in ast.walk(key):
                if isinstance(part, ast.Name) and part.id in ("tuple", "Tuple"):
                    return True
    return False


def _target_identifier(target: ast.expr) -> str | None:
    if isinstance(target, ast.Name):
        return target.id
    if isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name):
        return target.attr
    return None


def harvest_set_idents(tree: ast.Module) -> tuple[str, ...]:
    """Identifiers this module declares or builds as set/frozenset.

    Over-approximates on purpose (a name counts if the module types it
    as a set anywhere): the consumer rule (NG301) only fires when the
    loop body is effectful, and a stray hit is one ``sorted()`` or
    inline suppression away — cheap compared to a silent ordering
    heisenbug.  The index unions these per-module tuples project-wide.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            if _annotation_is_setlike(node.annotation):
                identifier = _target_identifier(node.target)
                if identifier:
                    names.add(identifier)
        elif isinstance(node, ast.arg):
            if _annotation_is_setlike(node.annotation):
                names.add(node.arg)
        elif isinstance(node, ast.Assign):
            value = node.value
            is_set_value = isinstance(value, ast.Set) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("set", "frozenset")
            )
            if is_set_value:
                for target in node.targets:
                    identifier = _target_identifier(target)
                    if identifier:
                        names.add(identifier)
    return tuple(sorted(names))


def harvest_tuple_dict_idents(tree: ast.Module) -> tuple[str, ...]:
    """Identifiers this module annotates as ``dict[tuple[...], ...]``."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign):
            if _annotation_is_tuple_keyed_dict(node.annotation):
                identifier = _target_identifier(node.target)
                if identifier:
                    names.add(identifier)
        elif isinstance(node, ast.arg):
            if _annotation_is_tuple_keyed_dict(node.annotation):
                names.add(node.arg)
    return tuple(sorted(names))


# -- per-function summary ----------------------------------------------------


class _FunctionWalker:
    """One statement-ordered walk of a function body.

    Maintains a name → :class:`ParamRef` taint environment.  Control
    flow is handled flow-insensitively inside branches (both arms are
    walked with the shared environment) — sound enough for the
    root-level facts the rules consume.
    """

    def __init__(
        self,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        lines: list[str],
        local_functions: set[str],
        local_classes: set[str],
        local_params: dict[str, tuple[str, ...]],
        local_returns: dict[str, tuple[str, ...]],
        import_names: dict[str, tuple[str, str]],
        import_modules: dict[str, str],
        is_method: bool,
    ) -> None:
        self.fn = fn
        self.lines = lines
        self.local_functions = local_functions
        self.local_classes = local_classes
        self.local_params = local_params
        self.local_returns = local_returns
        self.import_names = import_names
        self.import_modules = import_modules
        self.is_method = is_method
        args = fn.args
        ordered = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        self.params: tuple[str, ...] = tuple(a.arg for a in ordered)
        self.env: dict[str, ParamRef] = {
            p: ParamRef(p) for p in self.params
        }
        self.self_writes: list[WriteSite] = []
        self.param_mutations: list[WriteSite] = []
        self.returns_params: list[str] = []
        self.calls: list[CallSite] = []
        self.rng_assign_mismatches: list[RngAssign] = []
        self._seen_calls: set[int] = set()

    # -- helpers -------------------------------------------------------------

    def _line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def _module_of(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Name):
            return self.import_modules.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self._module_of(node.value)
            if base is not None:
                return f"{base}.{node.attr}"
        return None

    def taint_of(self, node: ast.expr) -> ParamRef | None:
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.taint_of(node.value)
            return base.extend(node.attr) if base else None
        if isinstance(node, ast.Subscript):
            return self.taint_of(node.value)
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                taint = self.taint_of(value)
                if taint is not None:
                    return taint
            return None
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) or self.taint_of(node.orelse)
        if isinstance(node, ast.Call):
            return self._call_result_taint(node)
        return None

    def _call_result_taint(self, call: ast.Call) -> ParamRef | None:
        func = call.func
        # getattr(x, "attr"[, default]) is attribute access in disguise
        # — the checkers' dominant aliasing idiom.
        if (
            isinstance(func, ast.Name)
            and func.id == "getattr"
            and len(call.args) >= 2
            and isinstance(call.args[1], ast.Constant)
            and isinstance(call.args[1].value, str)
        ):
            base = self.taint_of(call.args[0])
            if base is not None:
                return base.extend(call.args[1].value)
            return None
        # Same-module function whose return derives from a parameter:
        # taint the result from the argument bound to that parameter
        # (``chain = chain_of(node)`` taints ``chain`` from ``node``).
        if isinstance(func, ast.Name) and func.id in self.local_returns:
            returned = self.local_returns[func.id]
            if returned:
                bound = self._bind_simple(call, func.id)
                for param in returned:
                    taint = bound.get(param)
                    if taint is not None:
                        return taint
        return None

    def _bind_simple(
        self, call: ast.Call, func_name: str
    ) -> dict[str, ParamRef]:
        """Positional/keyword binding against a same-module function."""
        params = self.local_params.get(func_name, ())
        bound: dict[str, ParamRef] = {}
        for index, arg in enumerate(call.args):
            if index < len(params):
                taint = self.taint_of(arg)
                if taint is not None:
                    bound[params[index]] = taint
        for keyword in call.keywords:
            if keyword.arg is not None:
                taint = self.taint_of(keyword.value)
                if taint is not None:
                    bound[keyword.arg] = taint
        return bound

    def _record_write(self, taint: ParamRef, lineno: int) -> None:
        desc = self._line(lineno)
        if taint.root == "self":
            attr = taint.chain[0] if taint.chain else "self"
            if attr == "version":
                return  # bump writes are tracked by the formula
            self.self_writes.append(WriteSite(attr, lineno, desc))
        elif taint.root in self.params:
            self.param_mutations.append(WriteSite(taint.root, lineno, desc))

    # -- call recording ------------------------------------------------------

    def _arg_info(self, node: ast.expr) -> ArgInfo:
        display = _dotted_display(node)
        return ArgInfo(
            taint=self.taint_of(node),
            display=display,
            rng_tag=rng_stream_tag(display),
        )

    def record_call(self, call: ast.Call) -> None:
        if id(call) in self._seen_calls:
            return
        self._seen_calls.add(id(call))
        func = call.func
        kind = "unknown"
        target: tuple[str, ...] = ()
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.local_functions or name in self.local_classes:
                kind, target = "local", (name,)
            elif name in self.import_names:
                origin, original = self.import_names[name]
                kind, target = "import", (origin, original)
        elif isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name) and base.id == "self" and self.is_method:
                kind, target = "self", (func.attr,)
            else:
                module = self._module_of(base)
                if module is not None:
                    kind, target = "module", (module, func.attr)
                else:
                    # Duck-typed receiver: unresolvable as a call edge,
                    # but a mutating method name on a tainted receiver
                    # is a write right here.
                    taint = self.taint_of(base)
                    if taint is not None and func.attr in MUTATING_METHODS:
                        self._record_write(taint, call.lineno)
        self.calls.append(
            CallSite(
                lineno=call.lineno,
                kind=kind,
                target=target,
                args=tuple(self._arg_info(a) for a in call.args),
                keywords=tuple(
                    (k.arg, self._arg_info(k.value))
                    for k in call.keywords
                    if k.arg is not None
                ),
            )
        )

    def scan_expr(self, node: ast.expr | None) -> None:
        """Record every call in an expression (lambda bodies included)."""
        if node is None:
            return
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self.record_call(sub)

    # -- statement walk ------------------------------------------------------

    def assign_target(self, target: ast.expr, taint: ParamRef | None,
                      lineno: int) -> None:
        if isinstance(target, ast.Name):
            if taint is not None:
                self.env[target.id] = taint
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self.assign_target(elt, taint, lineno)
        elif isinstance(target, ast.Starred):
            self.assign_target(target.value, taint, lineno)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            base_taint = self.taint_of(target.value)
            if base_taint is not None:
                if isinstance(target, ast.Attribute):
                    base_taint = base_taint.extend(target.attr)
                self._record_write(base_taint, lineno)

    def _check_rng_assign(self, target: ast.expr, value: ast.expr,
                          lineno: int) -> None:
        target_name = _dotted_display(target)
        value_name = _dotted_display(value)
        target_tag = rng_stream_tag(target_name)
        value_tag = rng_stream_tag(value_name)
        if (
            target_tag is not None
            and value_tag is not None
            and target_tag != value_tag
            and target_name is not None
            and value_name is not None
        ):
            self.rng_assign_mismatches.append(
                RngAssign(lineno, target_name, target_tag,
                          value_name, value_tag)
            )

    def walk(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self._walk_stmt(stmt)

    def _walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes keep their own discipline
        if isinstance(stmt, ast.Assign):
            self.scan_expr(stmt.value)
            taint = self.taint_of(stmt.value)
            for target in stmt.targets:
                self.assign_target(target, taint, stmt.lineno)
                self._check_rng_assign(target, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AnnAssign):
            self.scan_expr(stmt.value)
            if stmt.value is not None:
                taint = self.taint_of(stmt.value)
                self.assign_target(stmt.target, taint, stmt.lineno)
                self._check_rng_assign(stmt.target, stmt.value, stmt.lineno)
        elif isinstance(stmt, ast.AugAssign):
            self.scan_expr(stmt.value)
            target = stmt.target
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                base_taint = self.taint_of(target.value)
                if base_taint is not None:
                    if isinstance(target, ast.Attribute):
                        base_taint = base_taint.extend(target.attr)
                    self._record_write(base_taint, stmt.lineno)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    base_taint = self.taint_of(target.value)
                    if base_taint is not None:
                        if isinstance(target, ast.Attribute):
                            base_taint = base_taint.extend(target.attr)
                        self._record_write(base_taint, stmt.lineno)
        elif isinstance(stmt, ast.Return):
            self.scan_expr(stmt.value)
            if stmt.value is not None:
                taint = self.taint_of(stmt.value)
                if (
                    taint is not None
                    and taint.root in self.params
                    and taint.root != "self"
                    and taint.root not in self.returns_params
                ):
                    self.returns_params.append(taint.root)
        elif isinstance(stmt, ast.Expr):
            self.scan_expr(stmt.value)
        elif isinstance(stmt, ast.If):
            self.scan_expr(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, (ast.While,)):
            self.scan_expr(stmt.test)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.scan_expr(stmt.iter)
            # Iterating a tainted container yields tainted elements.
            self.assign_target(stmt.target, self.taint_of(stmt.iter),
                               stmt.lineno)
            self.walk(stmt.body)
            self.walk(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.scan_expr(item.context_expr)
            self.walk(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.walk(stmt.body)
            for handler in stmt.handlers:
                self.walk(handler.body)
            self.walk(stmt.orelse)
            self.walk(stmt.finalbody)
        elif isinstance(stmt, ast.Raise):
            self.scan_expr(stmt.exc)
            self.scan_expr(stmt.cause)
        elif isinstance(stmt, ast.Assert):
            self.scan_expr(stmt.test)
            self.scan_expr(stmt.msg)


# -- bump formulas -----------------------------------------------------------


def _is_bump_stmt(stmt: ast.stmt) -> bool:
    """``self.version += ...`` or ``self.version = ...``."""
    if isinstance(stmt, ast.AugAssign):
        target: ast.expr = stmt.target
    elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        target = stmt.targets[0]
    else:
        return False
    return (
        isinstance(target, ast.Attribute)
        and target.attr == "version"
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    )


def _self_call_name(stmt: ast.stmt) -> str | None:
    """The method of a statement-level self-call, covering both the
    bare ``self.m(...)`` and the ``x = self.m(...)`` shapes."""
    value: ast.expr | None = None
    if isinstance(stmt, ast.Expr):
        value = stmt.value
    elif isinstance(stmt, ast.Assign):
        value = stmt.value
    elif isinstance(stmt, ast.AnnAssign):
        value = stmt.value
    elif isinstance(stmt, ast.Return):
        value = stmt.value
    if isinstance(value, ast.Call):
        func = value.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            return func.attr
    return None


def _stmt_formula(stmt: ast.stmt) -> Formula:
    if _is_bump_stmt(stmt):
        return True
    name = _self_call_name(stmt)
    if name is not None:
        return ("call", name)
    if isinstance(stmt, ast.If):
        if stmt.orelse:
            return ("and", _seq_formula(stmt.body), _seq_formula(stmt.orelse))
        return False
    if isinstance(stmt, (ast.For, ast.AsyncFor, ast.While)):
        # Lenient: a bump inside the loop pairs with the writes inside
        # the same loop; a zero-iteration loop also performs no writes.
        return _seq_formula(stmt.body)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return _seq_formula(stmt.body)
    if isinstance(stmt, ast.Try):
        return ("or", _seq_formula(stmt.body), _seq_formula(stmt.finalbody))
    return False


def _seq_formula(stmts: list[ast.stmt]) -> Formula:
    parts = [_stmt_formula(stmt) for stmt in stmts]
    parts = [p for p in parts if p is not False]
    if not parts:
        return False
    if True in parts:
        return True
    if len(parts) == 1:
        return parts[0]
    return ("or", *parts)


# -- module extraction -------------------------------------------------------


def _has_versioned_marker(lines: list[str], lineno: int) -> bool:
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines):
            if VERSIONED_MARKER in lines[candidate - 1]:
                return True
    return False


def _resolve_base(
    base: ast.expr,
    *,
    module: str,
    local_classes: set[str],
    import_names: dict[str, tuple[str, str]],
    import_modules: dict[str, str],
) -> str | None:
    if isinstance(base, ast.Name):
        name = base.id
        if name in local_classes:
            return f"{module}.{name}" if module else name
        if name in import_names:
            origin, original = import_names[name]
            return f"{origin}.{original}" if origin else original
        return name
    if isinstance(base, ast.Attribute):
        origin = None
        if isinstance(base.value, ast.Name):
            origin = import_modules.get(base.value.id)
        if origin is not None:
            return f"{origin}.{base.attr}"
        return base.attr
    return None


def _summarize_function(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    *,
    lines: list[str],
    local_functions: set[str],
    local_classes: set[str],
    local_params: dict[str, tuple[str, ...]],
    local_returns: dict[str, tuple[str, ...]],
    import_names: dict[str, tuple[str, str]],
    import_modules: dict[str, str],
    is_method: bool,
) -> FunctionSummary:
    walker = _FunctionWalker(
        fn,
        lines=lines,
        local_functions=local_functions,
        local_classes=local_classes,
        local_params=local_params,
        local_returns=local_returns,
        import_names=import_names,
        import_modules=import_modules,
        is_method=is_method,
    )
    walker.walk(fn.body)
    return FunctionSummary(
        name=fn.name,
        lineno=fn.lineno,
        params=walker.params,
        is_method=is_method,
        has_vararg=fn.args.vararg is not None,
        has_kwarg=fn.args.kwarg is not None,
        decorators=_decorator_names(fn),
        self_writes=tuple(walker.self_writes),
        param_mutations=tuple(walker.param_mutations),
        returns_params=tuple(walker.returns_params),
        bump_formula=_seq_formula(fn.body) if is_method else False,
        calls=tuple(walker.calls),
        rng_assign_mismatches=tuple(walker.rng_assign_mismatches),
    )


def extract_module(
    tree: ast.Module,
    *,
    display_path: str,
    module: str,
    lines: list[str],
    sha: str,
) -> ModuleSummary:
    """Build one module's summary (the cached unit of index state)."""
    import_modules, import_names = _extract_imports(tree, module)

    local_functions: set[str] = set()
    local_classes: set[str] = set()
    local_params: dict[str, tuple[str, ...]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_functions.add(node.name)
            args = node.args
            local_params[node.name] = tuple(
                a.arg
                for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
            )
        elif isinstance(node, ast.ClassDef):
            local_classes.add(node.name)

    # Pass 1: return-taint of module-level functions, so pass 2 can
    # taint through same-module call results (``chain_of(node)``).
    local_returns: dict[str, tuple[str, ...]] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary = _summarize_function(
                node,
                lines=lines,
                local_functions=local_functions,
                local_classes=local_classes,
                local_params=local_params,
                local_returns={},
                import_names=import_names,
                import_modules=import_modules,
                is_method=False,
            )
            if summary.returns_params:
                local_returns[node.name] = summary.returns_params

    functions: dict[str, FunctionSummary] = {}
    classes: dict[str, ClassSummary] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = _summarize_function(
                node,
                lines=lines,
                local_functions=local_functions,
                local_classes=local_classes,
                local_params=local_params,
                local_returns=local_returns,
                import_names=import_names,
                import_modules=import_modules,
                is_method=False,
            )
        elif isinstance(node, ast.ClassDef):
            methods: dict[str, FunctionSummary] = {}
            class_attrs: list[str] = []
            class_attr_literals: list[tuple[str, str, int]] = []

            def _record_attr(name: str, value: ast.expr, lineno: int) -> None:
                class_attrs.append(name)
                if isinstance(value, ast.Constant):
                    class_attr_literals.append(
                        (name, repr(value.value), lineno)
                    )

            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods[item.name] = _summarize_function(
                        item,
                        lines=lines,
                        local_functions=local_functions,
                        local_classes=local_classes,
                        local_params=local_params,
                        local_returns=local_returns,
                        import_names=import_names,
                        import_modules=import_modules,
                        is_method=True,
                    )
                elif isinstance(item, ast.Assign):
                    for target in item.targets:
                        if isinstance(target, ast.Name):
                            _record_attr(target.id, item.value, item.lineno)
                elif isinstance(item, ast.AnnAssign) and item.value is not None:
                    if isinstance(item.target, ast.Name):
                        _record_attr(
                            item.target.id, item.value, item.lineno
                        )
            bases = []
            for base in node.bases:
                resolved = _resolve_base(
                    base,
                    module=module,
                    local_classes=local_classes,
                    import_names=import_names,
                    import_modules=import_modules,
                )
                if resolved is not None:
                    bases.append(resolved)
            classes[node.name] = ClassSummary(
                name=node.name,
                lineno=node.lineno,
                bases=tuple(bases),
                versioned=_has_versioned_marker(lines, node.lineno),
                class_attrs=tuple(class_attrs),
                class_attr_literals=tuple(class_attr_literals),
                methods=methods,
            )

    return ModuleSummary(
        display_path=display_path,
        module=module,
        sha=sha,
        import_modules=import_modules,
        import_names=import_names,
        functions=functions,
        classes=classes,
        set_idents=harvest_set_idents(tree),
        tuple_dict_idents=harvest_tuple_dict_idents(tree),
    )
