"""Binary search for the first divergent event between two runs.

Two executions of the same config and seed should produce identical
digest streams.  When they do not, :func:`find_divergence` locates the
first snapshot where they differ and names the first node whose digest
broke — turning "determinism test failed" into "event ~1792, node 7,
mempool fingerprint differs".

The search assumes *monotone divergence*: once two same-seed runs
diverge, their event streams never re-converge (every later event is
scheduled relative to the already-divergent state).  That holds for the
discrete-event simulator by construction; ``tests/test_sanitizer.py``
cross-checks the bisection against a linear scan anyway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .digests import DigestSnapshot, NodeDigest


@dataclass(frozen=True)
class Divergence:
    """The first point two digest streams disagree."""

    index: int  #: snapshot index within the streams
    event_index: int  #: simulator event count at that snapshot (run A)
    time: float  #: virtual time at that snapshot (run A)
    node: int  #: first node whose digest differs (-1: stream length only)
    a: NodeDigest | None  #: run A's digest for that node
    b: NodeDigest | None  #: run B's digest for that node

    def format(self) -> str:
        if self.node < 0:
            return (
                f"streams share an identical prefix of {self.index} "
                "snapshots but have different lengths"
            )
        lines = [
            f"first divergence at snapshot #{self.index} "
            f"(event ~{self.event_index}, t={self.time:.3f}), node {self.node}:",
        ]
        if self.a is not None:
            lines.append(f"  run A: {self.a.format()}")
        if self.b is not None:
            lines.append(f"  run B: {self.b.format()}")
        return "\n".join(lines)


def _first_differing_node(
    a: DigestSnapshot, b: DigestSnapshot
) -> tuple[int, NodeDigest | None, NodeDigest | None]:
    """The lowest-id node whose digests differ between two snapshots."""
    b_by_node = {digest.node: digest for digest in b.digests}
    for digest in a.digests:
        other = b_by_node.get(digest.node)
        if other != digest:
            return digest.node, digest, other
    # Same per-node digests but unequal snapshots: metadata differs
    # (event index / time), or B has extra nodes.
    a_nodes = {digest.node for digest in a.digests}
    for digest in b.digests:
        if digest.node not in a_nodes:
            return digest.node, None, digest
    return -1, None, None


def find_divergence(
    a: Sequence[DigestSnapshot], b: Sequence[DigestSnapshot]
) -> Divergence | None:
    """First snapshot where the streams differ, or None if identical.

    Binary-searches the common prefix (monotone-divergence assumption);
    a pure length mismatch after an identical prefix is reported with
    ``node = -1``.
    """
    common = min(len(a), len(b))
    lo, hi = 0, common
    while lo < hi:
        mid = (lo + hi) // 2
        if a[mid] != b[mid]:
            hi = mid
        else:
            lo = mid + 1
    if lo == common:
        if len(a) == len(b):
            return None
        return Divergence(
            index=common,
            event_index=a[common].index if common < len(a) else b[common].index,
            time=a[common].time if common < len(a) else b[common].time,
            node=-1,
            a=None,
            b=None,
        )
    node, digest_a, digest_b = _first_differing_node(a[lo], b[lo])
    return Divergence(
        index=lo,
        event_index=a[lo].index,
        time=a[lo].time,
        node=node,
        a=digest_a,
        b=digest_b,
    )
