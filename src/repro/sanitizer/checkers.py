"""The invariant catalog: what the paper promises, checked against state.

Each checker is a small object with a code (``INV1xx``), a name, and
four hooks: :meth:`InvariantChecker.check_block` runs once per block the
sweeping node newly adopted onto its main chain (oldest first);
:meth:`InvariantChecker.check_state` runs against the node's current
mempool/UTXO/chain state (the *full-sweep* hook); and the incremental
pair — :meth:`InvariantChecker.on_event` observes a :class:`NodeDelta`
describing what changed since the last sweep, and
:meth:`InvariantChecker.check_dirty` runs the state check only when the
delta touches the components the checker declares in
:attr:`InvariantChecker.depends`.  The default ``check_dirty`` delegates
to ``check_state``, so a checker written against the full-sweep API is
automatically correct (if not maximally cheap) under the incremental
runtime.  Checkers only *read* node state — they never schedule events,
draw randomness, or mutate anything, which is what keeps checked runs
bit-identical to unchecked runs.

INV104 (microblock-leader-sig) is the one checker whose work is
expensive enough to dominate checked runs: a pure-Python ECDSA verify
per main-chain microblock per node.  Signature validity is a pure
function of ``(leader_pubkey, header, signature)``, so a process-wide
:class:`SignatureCache` memoizes the verdict and each unique pair is
verified exactly once per process — a reorg that moves a microblock
under a different epoch leader produces a *different* cache key, so
entries can never be served stale (see the class docstring).

The catalog maps paper sections to executable assertions:

========  ==========================  ==============================
code      name                        paper anchor
========  ==========================  ==============================
INV101    value-conservation          Section 4.4 (subsidy + fees)
INV102    fee-split                   Section 4.4 (40%/60% split)
INV103    coinbase-maturity           Section 4.4 (100-block maturity)
INV104    microblock-leader-sig       Section 4.2 (epoch key signs)
INV105    microblock-rate             Section 4.2 (min interval)
INV106    microblock-size             Section 4.2 (size cap)
INV107    key-weight                  Section 4.1 (key blocks only)
INV108    poison-forfeiture           Section 4.5 (fraud proofs)
INV109    tip-monotonicity            Section 3 (heaviest chain)
INV110    mempool-consistency         ledger bookkeeping
========  ==========================  ==============================

:func:`ng_checkers` builds the full Bitcoin-NG set; :func:`chain_checkers`
builds the protocol-agnostic subset used for plain Bitcoin and GHOST
(their records carry no ``is_key``/leader structure to check).  All
three factories take a ``mode`` — ``"incremental"`` wires the shared
signature cache in, ``"full"`` builds independent uncached checkers for
the cross-check path.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from typing import ClassVar

from ..bitcoin.blocks import SyntheticPayload
from ..core.remuneration import split_fee
from ..obs.trace import short_hash
from .violations import ViolationRecord, make_violation

#: Tolerance when comparing virtual timestamps, matching the chain's own
#: microblock-interval validation slack.
TIME_EPSILON = 1e-9

#: The node-state components a checker can declare in
#: :attr:`InvariantChecker.depends` (and a :class:`NodeDelta` can dirty).
COMPONENTS = frozenset({"chain", "mempool", "utxo", "poisons"})

#: Checker modes the factories and the runtime understand.
CHECK_MODES = ("incremental", "full")


def validate_check_mode(mode: str) -> str:
    """Validate a checker-construction mode string and return it."""
    if mode not in CHECK_MODES:
        raise ValueError(
            f"unknown check mode {mode!r} (choose from {CHECK_MODES})"
        )
    return mode


@dataclass(frozen=True)
class NodeDelta:
    """What changed for one node since the sanitizer's last sweep.

    Built by the runtime's dirty-set tracker from cheap observations —
    the chain tip hash, the mempool/UTXO mutation counters, and the
    published-poison count — plus the main-chain records the node newly
    adopted (oldest first).  ``check_dirty`` uses it to skip state
    checks whose inputs cannot have changed.
    """

    chain: bool = False
    mempool: bool = False
    utxo: bool = False
    poisons: bool = False
    #: Newly adopted main-chain records, oldest first (the same records
    #: ``check_block`` is called with during this sweep).
    fresh_blocks: tuple = ()

    def touches(self, components: Iterable[str]) -> bool:
        """True if any of ``components`` is dirty in this delta."""
        for component in components:
            if getattr(self, component, False):
                return True
        return False

    @property
    def dirty_components(self) -> frozenset[str]:
        return frozenset(
            component
            for component in COMPONENTS
            if getattr(self, component)
        )


#: A delta with every component dirty — what full sweeps hand to
#: ``check_dirty`` so delegation to ``check_state`` is unconditional.
ALL_DIRTY = NodeDelta(chain=True, mempool=True, utxo=True, poisons=True)


class SignatureCache:
    """Process-wide memo of microblock signature verdicts.

    Signature validity is a *pure function* of the verifying key, the
    signed header, and the signature bytes.  The cache key is therefore
    ``(leader_pubkey, microblock_hash, signature)``: the microblock hash
    pins the header (it covers prev-hash, timestamp, and entries root
    but — deliberately — not the signature, so the signature must be in
    the key itself), and the pubkey pins which epoch leader the pair is
    judged under.  Because the key captures the verification's full
    input, entries can never go stale: a reorg that drops a key block
    changes which ``leader_pubkey`` INV104 looks up — a *different* key,
    a fresh verification — never a wrong cached verdict.  Negative
    verdicts are cached too, so a forged microblock costs one verify,
    not one per sweep per node.
    """

    def __init__(self, max_entries: int = 1 << 20) -> None:
        self.max_entries = max(1, int(max_entries))
        self.hits = 0
        self.misses = 0
        self._verdicts: dict[tuple[bytes, bytes, bytes], bool] = {}

    def __len__(self) -> int:
        return len(self._verdicts)

    def clear(self) -> None:
        """Drop all memoized verdicts (and reset the hit/miss counters).

        Safe at any time — the cache memoizes a pure function, so a
        cleared entry is simply recomputed on next lookup.  Benchmarks
        use this to measure cold-cache checked runs.
        """
        self._verdicts.clear()
        self.hits = 0
        self.misses = 0

    def verify(self, block: object, leader_pubkey: bytes) -> bool:
        """``block.verify_signature(leader_pubkey)``, memoized."""
        key = (
            leader_pubkey,
            block.hash,  # type: ignore[attr-defined]
            block.signature,  # type: ignore[attr-defined]
        )
        verdict = self._verdicts.get(key)
        if verdict is None:
            self.misses += 1
            verdict = bool(
                block.verify_signature(leader_pubkey)  # type: ignore[attr-defined]
            )
            if len(self._verdicts) >= self.max_entries:
                # Bounded: dropping memoized verdicts of a pure function
                # is always safe — they refill on demand.
                self._verdicts.clear()
            self._verdicts[key] = verdict
        else:
            self.hits += 1
        return verdict


_SHARED_SIGNATURE_CACHE = SignatureCache()


def shared_signature_cache() -> SignatureCache:
    """The process-wide cache incremental-mode factories wire into INV104."""
    return _SHARED_SIGNATURE_CACHE


def chain_of(node: object) -> object:
    """The node's block-tree view: ``.chain`` (NG) or ``.tree`` (bitcoin)."""
    chain = getattr(node, "chain", None)
    if chain is not None:
        return chain
    return node.tree  # type: ignore[attr-defined]


def _microblock_fees(node: object, micro: object) -> int:
    """Total entry fees a microblock carries, as the node accounts them.

    Mirrors ``NGNode._microblock_fees``: synthetic payloads price at the
    node's per-tx policy fee; real payloads use the fee total the node
    recorded when the microblock connected.
    """
    payload = getattr(micro, "payload", None)
    if isinstance(payload, SyntheticPayload):
        policy = getattr(node, "policy", None)
        per_tx = getattr(policy, "synthetic_fee_per_tx", 0)
        return int(getattr(micro, "n_tx", 0)) * int(per_tx)
    recorded = getattr(node, "_fees_by_micro", None)
    if recorded is None:
        return 0
    return int(recorded.get(micro.hash, 0))  # type: ignore[attr-defined]


def _epoch_fees_behind(node: object, chain: object, parent_hash: bytes) -> int:
    """Fees in the microblock run ending at ``parent_hash`` (exclusive of
    the key block that opened the epoch)."""
    fees = 0
    cursor = chain.get(parent_hash)  # type: ignore[attr-defined]
    while cursor is not None and not cursor.is_key:
        fees += _microblock_fees(node, cursor.block)
        cursor = chain.get(cursor.parent_hash)  # type: ignore[attr-defined]
    return fees


class InvariantChecker:
    """One protocol invariant: a code, a description, and four hooks.

    ``check_block``/``check_state`` are the original full-sweep surface;
    ``on_event``/``check_dirty`` are the incremental surface fed by the
    runtime's dirty-set tracker.  The defaults make every legacy checker
    incremental-correct for free: ``check_dirty`` delegates to
    ``check_state`` whenever the delta touches :attr:`depends`, and
    ``on_event`` is a no-op observation hook for checkers that maintain
    cross-sweep state.
    """

    code: ClassVar[str] = "INV000"
    name: ClassVar[str] = "unnamed"
    description: ClassVar[str] = ""
    #: Which node-state components the *state* hook reads.  The
    #: incremental runtime only calls ``check_dirty`` when the sweep's
    #: delta touches one of these; block-scoped checkers declare the
    #: empty set because their state hook checks nothing.
    depends: ClassVar[frozenset[str]] = COMPONENTS

    def check_block(
        self, node: object, node_id: int, record: object, now: float
    ) -> list[ViolationRecord]:
        """Called once per block newly adopted onto the node's main chain."""
        return []

    def check_state(
        self, node: object, node_id: int, now: float
    ) -> list[ViolationRecord]:
        """Called against the node's live state on every full sweep."""
        return []

    def on_event(
        self, node: object, node_id: int, delta: NodeDelta, now: float
    ) -> None:
        """Observe a node's delta before this sweep's checks run.

        Incremental mode only; called once per dirty node per sweep,
        before ``check_block``/``check_dirty``.  For checkers that track
        cross-sweep state; must not mutate node state.
        """

    def check_dirty(
        self, node: object, node_id: int, delta: NodeDelta, now: float
    ) -> list[ViolationRecord]:
        """The state check, gated on what actually changed.

        The default runs ``check_state`` when ``delta`` touches
        :attr:`depends` and skips it otherwise — sound whenever
        ``depends`` names every component the state check reads.
        """
        if delta.touches(self.depends):
            return self.check_state(node, node_id, now)
        return []


# -- block-scoped checkers ---------------------------------------------------
#
# All of these verify properties of individual (immutable) blocks via
# ``check_block``; their state hook checks nothing, so ``depends`` is
# empty and the incremental runtime never calls their ``check_dirty``.


class ValueConservation(InvariantChecker):
    code = "INV101"
    name = "value-conservation"
    description = (
        "Every key block's coinbase mints exactly key_block_reward plus "
        "the entry fees of the epoch it closes — no inflation, no burn."
    )
    depends = frozenset()

    def check_block(
        self, node: object, node_id: int, record: object, now: float
    ) -> list[ViolationRecord]:
        if not getattr(record, "is_key", False):
            return []
        chain = chain_of(node)
        parent = chain.get(record.parent_hash)  # type: ignore[attr-defined]
        if parent is None:
            return []  # genesis
        coinbase = getattr(record.block, "coinbase", None)  # type: ignore[attr-defined]
        if coinbase is None:
            return []
        params = node.params  # type: ignore[attr-defined]
        fees = _epoch_fees_behind(node, chain, record.parent_hash)  # type: ignore[attr-defined]
        expected = params.key_block_reward + fees
        minted = sum(out.value for out in coinbase.outputs)
        if minted != expected:
            return [
                make_violation(
                    self,
                    node_id,
                    now,
                    "coinbase mints a different total than subsidy plus "
                    "closed-epoch fees",
                    block=short_hash(record.hash),  # type: ignore[attr-defined]
                    minted=minted,
                    expected=expected,
                    epoch_fees=fees,
                    subsidy=params.key_block_reward,
                )
            ]
        return []


class FeeSplit(InvariantChecker):
    code = "INV102"
    name = "fee-split"
    description = (
        "The previous leader's coinbase payout is exactly "
        "int(fees * leader_fee_fraction) satoshis — the 40% share, "
        "integer-exact, with rounding dust to the new leader."
    )
    depends = frozenset()

    def check_block(
        self, node: object, node_id: int, record: object, now: float
    ) -> list[ViolationRecord]:
        if not getattr(record, "is_key", False):
            return []
        chain = chain_of(node)
        parent = chain.get(record.parent_hash)  # type: ignore[attr-defined]
        if parent is None:
            return []  # genesis
        coinbase = getattr(record.block, "coinbase", None)  # type: ignore[attr-defined]
        if coinbase is None or not coinbase.outputs:
            return []
        params = node.params  # type: ignore[attr-defined]
        fees = _epoch_fees_behind(node, chain, record.parent_hash)  # type: ignore[attr-defined]
        prev_cut, _self_cut = split_fee(fees, params.leader_fee_fraction)
        paid_prev = sum(out.value for out in coinbase.outputs[1:])
        if paid_prev != prev_cut:
            return [
                make_violation(
                    self,
                    node_id,
                    now,
                    "previous leader's fee share differs from the "
                    "integer-exact split",
                    block=short_hash(record.hash),  # type: ignore[attr-defined]
                    paid=paid_prev,
                    expected=prev_cut,
                    epoch_fees=fees,
                    fraction=params.leader_fee_fraction,
                )
            ]
        return []


class MicroblockSignature(InvariantChecker):
    code = "INV104"
    name = "microblock-leader-sig"
    description = (
        "Every microblock on the main chain verifies under the epoch "
        "leader's public key — the key in the latest key block before it."
    )
    depends = frozenset()

    def __init__(self, cache: SignatureCache | None = None) -> None:
        # ``cache=None`` verifies every call independently — the honest
        # path ``--check=full`` and the periodic audit use.  Incremental
        # factories pass the shared process-wide cache so each unique
        # (leader_pubkey, microblock, signature) triple is verified once.
        self.cache = cache

    def _verify(self, block: object, leader_pubkey: bytes) -> bool:
        if self.cache is not None:
            return self.cache.verify(block, leader_pubkey)
        return bool(block.verify_signature(leader_pubkey))  # type: ignore[attr-defined]

    def check_block(
        self, node: object, node_id: int, record: object, now: float
    ) -> list[ViolationRecord]:
        if getattr(record, "is_key", True):
            return []
        chain = chain_of(node)
        parent = chain.get(record.parent_hash)  # type: ignore[attr-defined]
        if parent is None:
            return []
        if not self._verify(record.block, parent.leader_pubkey):  # type: ignore[attr-defined]
            return [
                make_violation(
                    self,
                    node_id,
                    now,
                    "microblock signature does not verify under the epoch "
                    "leader's key",
                    block=short_hash(record.hash),  # type: ignore[attr-defined]
                    parent=short_hash(record.parent_hash),  # type: ignore[attr-defined]
                )
            ]
        return []


class MicroblockRate(InvariantChecker):
    code = "INV105"
    name = "microblock-rate"
    description = (
        "Adjacent microblock timestamps respect the protocol's minimum "
        "interval — the cap that stops a leader swamping the network."
    )
    depends = frozenset()

    def check_block(
        self, node: object, node_id: int, record: object, now: float
    ) -> list[ViolationRecord]:
        if getattr(record, "is_key", True):
            return []
        chain = chain_of(node)
        parent = chain.get(record.parent_hash)  # type: ignore[attr-defined]
        if parent is None:
            return []
        params = node.params  # type: ignore[attr-defined]
        gap = record.timestamp - parent.timestamp  # type: ignore[attr-defined]
        if gap < params.min_microblock_interval - TIME_EPSILON:
            return [
                make_violation(
                    self,
                    node_id,
                    now,
                    "microblock generated faster than the minimum interval",
                    block=short_hash(record.hash),  # type: ignore[attr-defined]
                    gap=round(gap, 9),
                    minimum=params.min_microblock_interval,
                )
            ]
        return []


class MicroblockSize(InvariantChecker):
    code = "INV106"
    name = "microblock-size"
    description = (
        "No main-chain microblock exceeds the protocol's maximum "
        "microblock size."
    )
    depends = frozenset()

    def check_block(
        self, node: object, node_id: int, record: object, now: float
    ) -> list[ViolationRecord]:
        if getattr(record, "is_key", True):
            return []
        params = node.params  # type: ignore[attr-defined]
        size = record.block.size  # type: ignore[attr-defined]
        if size > params.max_microblock_bytes:
            return [
                make_violation(
                    self,
                    node_id,
                    now,
                    "microblock exceeds the maximum size",
                    block=short_hash(record.hash),  # type: ignore[attr-defined]
                    size=size,
                    maximum=params.max_microblock_bytes,
                )
            ]
        return []


class ChainWeight(InvariantChecker):
    code = "INV107"
    name = "key-weight"
    description = (
        "Cumulative chain weight is the parent's weight plus the block's "
        "own work for key blocks, and unchanged for microblocks — "
        "microblocks carry zero weight in fork choice."
    )
    depends = frozenset()

    def check_block(
        self, node: object, node_id: int, record: object, now: float
    ) -> list[ViolationRecord]:
        chain = chain_of(node)
        parent = chain.get(record.parent_hash)  # type: ignore[attr-defined]
        if parent is None:
            return []
        is_key = getattr(record, "is_key", True)
        own_work = record.block.header.work if is_key else 0  # type: ignore[attr-defined]
        expected = parent.cumulative_work + own_work
        if record.cumulative_work != expected:  # type: ignore[attr-defined]
            return [
                make_violation(
                    self,
                    node_id,
                    now,
                    "cumulative work does not follow the key-blocks-only "
                    "weight recurrence",
                    block=short_hash(record.hash),  # type: ignore[attr-defined]
                    weight=record.cumulative_work,  # type: ignore[attr-defined]
                    expected=expected,
                    is_key=is_key,
                )
            ]
        return []


# -- state-scoped checkers ---------------------------------------------------


class CoinbaseMaturity(InvariantChecker):
    code = "INV103"
    name = "coinbase-maturity"
    description = (
        "No mempool transaction spends a coinbase output before it has "
        "matured (coinbase_maturity blocks deep)."
    )
    # The check also reads the chain tip height, but a violation can only
    # *appear* via a pool mutation (a new immature spend) or a UTXO
    # mutation (a reorg disconnecting blocks lowers the tip, and every
    # disconnect is an undo — a UTXO mutation).  Pure height growth only
    # clears violations, so "chain" need not be in the set.
    depends = frozenset({"mempool", "utxo"})

    def check_state(
        self, node: object, node_id: int, now: float
    ) -> list[ViolationRecord]:
        utxo = getattr(node, "utxo", None)
        mempool = getattr(node, "mempool", None)
        if utxo is None or mempool is None:
            return []
        next_height = chain_of(node).tip_record.height + 1  # type: ignore[attr-defined]
        violations: list[ViolationRecord] = []
        for tx in mempool.transactions():
            for txin in tx.inputs:
                coin = utxo.get(txin.outpoint)
                if (
                    coin is not None
                    and coin.is_coinbase
                    and next_height - coin.height < utxo.coinbase_maturity
                ):
                    violations.append(
                        make_violation(
                            self,
                            node_id,
                            now,
                            "mempool transaction spends an immature coinbase",
                            tx=short_hash(tx.txid),
                            coin_height=coin.height,
                            spend_height=next_height,
                            maturity=utxo.coinbase_maturity,
                        )
                    )
        return violations


class PoisonForfeiture(InvariantChecker):
    code = "INV108"
    name = "poison-forfeiture"
    description = (
        "Every published poison transaction carries a verifying fraud "
        "proof whose pruned microblock is genuinely off the main chain, "
        "and is registered (one poison per cheater)."
    )
    # Reads the published-poison list and the main-chain membership of
    # each pruned microblock (which a reorg can change).
    depends = frozenset({"poisons", "chain"})

    def check_state(
        self, node: object, node_id: int, now: float
    ) -> list[ViolationRecord]:
        published = getattr(node, "poisons_published", None)
        if not published:
            return []
        chain = chain_of(node)
        registry = getattr(node, "poison_registry", None)
        violations: list[ViolationRecord] = []
        for poison in published:
            pruned = poison.proof.pruned_micro
            if not poison.proof.verify():
                violations.append(
                    make_violation(
                        self,
                        node_id,
                        now,
                        "published poison carries a non-verifying fraud proof",
                        pruned=short_hash(pruned.hash),
                    )
                )
            elif chain.is_in_main_chain(pruned.hash):  # type: ignore[attr-defined]
                violations.append(
                    make_violation(
                        self,
                        node_id,
                        now,
                        "poisoned microblock is on the main chain — no fraud "
                        "to forfeit",
                        pruned=short_hash(pruned.hash),
                    )
                )
            elif registry is not None and poison.offender_pubkey not in registry:
                violations.append(
                    make_violation(
                        self,
                        node_id,
                        now,
                        "published poison missing from the one-per-cheater "
                        "registry",
                        pruned=short_hash(pruned.hash),
                    )
                )
        return violations


class TipMonotonicity(InvariantChecker):
    code = "INV109"
    name = "tip-monotonicity"
    description = (
        "A node's tip weight never decreases: fork choice only ever "
        "switches to a chain of equal or greater key-block work."
    )
    # A weight decrease implies a tip switch, and every tip switch
    # dirties the chain component — skipped sweeps can't miss one.
    depends = frozenset({"chain"})

    def __init__(self) -> None:
        self._last_weight: dict[int, int] = {}

    def check_state(
        self, node: object, node_id: int, now: float
    ) -> list[ViolationRecord]:
        weight = chain_of(node).tip_record.cumulative_work  # type: ignore[attr-defined]
        previous = self._last_weight.get(node_id)
        self._last_weight[node_id] = weight
        if previous is not None and weight < previous:
            return [
                make_violation(
                    self,
                    node_id,
                    now,
                    "tip weight decreased between sweeps",
                    weight=weight,
                    previous=previous,
                )
            ]
        return []


class MempoolConsistency(InvariantChecker):
    code = "INV110"
    name = "mempool-consistency"
    description = (
        "The mempool's spend index, entry map, and fee map agree with "
        "each other, and every entry's inputs exist in the UTXO set or "
        "as in-pool parents."
    )
    depends = frozenset({"mempool", "utxo"})

    def check_state(
        self, node: object, node_id: int, now: float
    ) -> list[ViolationRecord]:
        mempool = getattr(node, "mempool", None)
        utxo = getattr(node, "utxo", None)
        if mempool is None:
            return []
        violations: list[ViolationRecord] = []
        entries = {tx.txid: tx for tx in mempool.transactions()}
        spends = mempool.spend_index()
        fees = mempool.fee_index()
        for outpoint, txid in spends.items():
            tx = entries.get(txid)
            if tx is None:
                violations.append(
                    make_violation(
                        self,
                        node_id,
                        now,
                        "spend index references a transaction not in the pool",
                        spender=short_hash(txid),
                    )
                )
            elif all(txin.outpoint != outpoint for txin in tx.inputs):
                violations.append(
                    make_violation(
                        self,
                        node_id,
                        now,
                        "spend index maps an outpoint its transaction does "
                        "not spend",
                        spender=short_hash(txid),
                    )
                )
        for txid, tx in entries.items():
            for txin in tx.inputs:
                if spends.get(txin.outpoint) != txid:
                    violations.append(
                        make_violation(
                            self,
                            node_id,
                            now,
                            "pool entry's input missing from the spend index",
                            tx=short_hash(txid),
                        )
                    )
                elif (
                    utxo is not None
                    and txin.outpoint not in utxo
                    and txin.outpoint.txid not in entries
                ):
                    violations.append(
                        make_violation(
                            self,
                            node_id,
                            now,
                            "pool entry spends an output that exists neither "
                            "in the UTXO set nor in the pool",
                            tx=short_hash(txid),
                        )
                    )
            if txid not in fees:
                violations.append(
                    make_violation(
                        self,
                        node_id,
                        now,
                        "pool entry has no fee record",
                        tx=short_hash(txid),
                    )
                )
        for txid in fees:
            if txid not in entries:
                violations.append(
                    make_violation(
                        self,
                        node_id,
                        now,
                        "fee record for a transaction not in the pool",
                        tx=short_hash(txid),
                    )
                )
        return violations


def ng_checkers(mode: str = "incremental") -> list[InvariantChecker]:
    """Fresh instances of the full Bitcoin-NG invariant catalog.

    ``mode="incremental"`` (the default) wires the shared process-wide
    :class:`SignatureCache` into INV104 so each unique signature pair is
    verified once per process; ``mode="full"`` builds an uncached INV104
    — the genuinely independent verification path the cross-check mode
    and the periodic audit rely on.
    """
    validate_check_mode(mode)
    cache = shared_signature_cache() if mode == "incremental" else None
    return [
        ValueConservation(),
        FeeSplit(),
        CoinbaseMaturity(),
        MicroblockSignature(cache=cache),
        MicroblockRate(),
        MicroblockSize(),
        ChainWeight(),
        PoisonForfeiture(),
        TipMonotonicity(),
        MempoolConsistency(),
    ]


def chain_checkers(mode: str = "incremental") -> list[InvariantChecker]:
    """The protocol-agnostic subset (plain Bitcoin and the default for
    externally registered adapters).  No checker here caches, so the
    modes build identical sets — the parameter keeps the factory surface
    uniform across protocols."""
    validate_check_mode(mode)
    return [
        ChainWeight(),
        CoinbaseMaturity(),
        TipMonotonicity(),
        MempoolConsistency(),
    ]


def ghost_checkers(mode: str = "incremental") -> list[InvariantChecker]:
    """The GHOST subset: tip monotonicity is deliberately absent.

    GHOST picks tips by heaviest *subtree*, so a reorg can legitimately
    adopt a leaf whose chain work is lower than the old tip's — INV109
    is an invariant of heaviest-chain protocols only.
    """
    validate_check_mode(mode)
    return [
        ChainWeight(),
        CoinbaseMaturity(),
        MempoolConsistency(),
    ]
