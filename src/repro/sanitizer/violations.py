"""Structured invariant violations.

A :class:`ViolationRecord` is the sanitizer's finding type: which
invariant (code + name), on which node, at what virtual time, with a
small JSON-friendly snapshot of the offending state.  Records are
frozen dataclasses of primitives so they pickle through process-pool
sweep workers on :class:`~repro.experiments.runner.ExperimentResult`
and serialize losslessly into schema-v1 trace events.

:class:`InvariantViolation` wraps one record as an exception for
callers that want checked mode to be fail-fast (strict checking in
tests); the runtime itself collects records instead of raising so a
single sweep reports every violated invariant, not just the first.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ViolationRecord:
    """One invariant violation, ready for tracing and reporting."""

    code: str  #: checker code, e.g. ``INV102``
    name: str  #: checker slug, e.g. ``fee-split``
    node: int  #: node id whose state violated the invariant
    time: float  #: virtual time of the sweep that caught it
    message: str  #: human-readable description
    #: Flat state snapshot: sorted (key, value) pairs of primitives.
    snapshot: tuple[tuple[str, object], ...] = field(default=())

    def to_dict(self) -> dict:
        """JSON-friendly form (the trace event's field payload)."""
        return {
            "code": self.code,
            "name": self.name,
            "node": self.node,
            "message": self.message,
            "snapshot": dict(self.snapshot),
        }

    def format(self) -> str:
        detail = ", ".join(f"{k}={v}" for k, v in self.snapshot)
        suffix = f" [{detail}]" if detail else ""
        return (
            f"{self.code} ({self.name}) node={self.node} "
            f"t={self.time:.3f}: {self.message}{suffix}"
        )


class InvariantViolation(Exception):
    """A protocol invariant failed during a checked simulation."""

    def __init__(self, record: ViolationRecord) -> None:
        super().__init__(record.format())
        self.record = record


def make_violation(
    checker: object,
    node: int,
    time: float,
    message: str,
    **snapshot: object,
) -> ViolationRecord:
    """Build a record from a checker instance plus context."""
    return ViolationRecord(
        code=getattr(checker, "code", "INV000"),
        name=getattr(checker, "name", "unknown"),
        node=node,
        time=time,
        message=message,
        snapshot=tuple(sorted(snapshot.items())),
    )
