"""The ``repro check`` subcommands: determinism race detection.

``repro check diverge`` compares two digest streams and bisects to the
first divergent event.  Two input modes:

* **file mode** — two positional files saved by ``repro check record``
  (e.g. from two git revisions, or a serial and a ``--jobs`` run);
* **run mode** — no files: the configured experiment runs twice
  in-process with identical config and seed, which must be identical
  unless something nondeterministic is lurking.

``repro check record`` captures one run's digest stream to a file.

Exit codes: 0 identical, 1 divergence found, 2 usage/input error.

No environment variables are read here — ``REPRO_CHECK`` is resolved in
:mod:`repro.cli`, the one config entry point (see lint rule NG202).
"""

from __future__ import annotations

import argparse
import sys


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    from ..protocols import Protocol

    parser.add_argument(
        "--protocol",
        choices=sorted(protocol.value for protocol in Protocol),
        default="bitcoin-ng",
    )
    parser.add_argument("--nodes", type=int, default=30, help="network size")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--blocks", type=int, default=20, help="target blocks per run"
    )
    parser.add_argument("--block-rate", type=float, default=0.2)
    parser.add_argument("--block-size", type=int, default=8_000)
    parser.add_argument("--key-block-rate", type=float, default=0.02)
    parser.add_argument(
        "--stride",
        type=int,
        default=64,
        help="capture a digest snapshot every N simulator events",
    )
    parser.add_argument(
        "--check",
        nargs="?",
        const="incremental",
        choices=("incremental", "full", "audit"),
        default=None,
        metavar="MODE",
        help="also run the protocol's invariant checkers during the "
        "digest run(s); in the run-twice diverge mode both runs use "
        "this same mode by construction, so a divergence can never be "
        "an incremental-vs-full artifact",
    )


def _config_from_args(args: argparse.Namespace) -> object:
    from ..experiments import ExperimentConfig

    mode = getattr(args, "check", None)
    return ExperimentConfig(
        protocol=args.protocol,
        n_nodes=args.nodes,
        seed=args.seed,
        target_blocks=args.blocks,
        block_rate=args.block_rate,
        block_size_bytes=args.block_size,
        key_block_rate=args.key_block_rate,
        check=mode is not None,
        check_mode=mode if mode is not None else "incremental",
    )


def _digest_run(config: object, stride: int) -> list:
    """One experiment run capturing a digest stream.

    Checking rides along when the config asks for it, built through the
    same :class:`~repro.experiments.instrumentation.RunInstrumentation`
    path as ``repro run`` — so two calls with the same config check in
    the same mode, by construction.
    """
    from ..experiments import RunInstrumentation, run_experiment
    from ..protocols import get_adapter

    instrumentation = RunInstrumentation.from_config(config)  # type: ignore[arg-type]
    adapter = (
        get_adapter(config.protocol)  # type: ignore[attr-defined]
        if instrumentation.check
        else None
    )
    runtime = instrumentation.build_sanitizer(
        adapter, digest_stride=max(1, stride)
    )
    run_experiment(config, sanitizer=runtime)  # type: ignore[arg-type]
    return runtime.digests


def cmd_diverge(args: argparse.Namespace) -> int:
    from .bisect import find_divergence
    from .digests import load_stream

    if args.files:
        if len(args.files) != 2:
            print(
                "error: diverge needs exactly two digest-stream files "
                "(or none to run twice in-process)",
                file=sys.stderr,
            )
            return 2
        try:
            stream_a = load_stream(args.files[0])
            stream_b = load_stream(args.files[1])
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(f"comparing {args.files[0]} vs {args.files[1]}")
    else:
        config = _config_from_args(args)
        stream_a = _digest_run(config, args.stride)
        stream_b = _digest_run(config, args.stride)
        print(
            f"comparing two in-process runs "
            f"(protocol={args.protocol}, seed={args.seed}, "
            f"stride={args.stride})"
        )
    divergence = find_divergence(stream_a, stream_b)
    if divergence is None:
        events = stream_a[-1].index if stream_a else 0
        print(
            f"identical: {len(stream_a)} snapshots over ~{events} events"
        )
        return 0
    print(divergence.format())
    return 1


def cmd_record(args: argparse.Namespace) -> int:
    from .digests import save_stream

    config = _config_from_args(args)
    snapshots = _digest_run(config, args.stride)
    save_stream(
        args.out,
        snapshots,
        meta={
            "protocol": args.protocol,
            "seed": args.seed,
            "stride": args.stride,
        },
    )
    print(f"recorded {len(snapshots)} snapshots to {args.out}")
    return 0


def add_check_parser(commands: argparse._SubParsersAction) -> None:
    """Register the ``check`` command group on the main CLI."""
    check_parser = commands.add_parser(
        "check",
        help="runtime determinism tooling: digest recording and bisection",
    )
    check_commands = check_parser.add_subparsers(
        dest="check_command", required=True
    )

    diverge_parser = check_commands.add_parser(
        "diverge",
        help="bisect two same-config runs to the first divergent event",
    )
    diverge_parser.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help="two saved digest streams to compare (omit to run the "
        "configured experiment twice in-process)",
    )
    _add_run_options(diverge_parser)
    diverge_parser.set_defaults(handler=cmd_diverge)

    record_parser = check_commands.add_parser(
        "record", help="run once and save the digest stream to a file"
    )
    record_parser.add_argument(
        "--out", required=True, metavar="FILE", help="output path (JSONL)"
    )
    _add_run_options(record_parser)
    record_parser.set_defaults(handler=cmd_record)
