"""repro.sanitizer: runtime protocol-invariant checking + race detection.

The dynamic half of the correctness-tooling stack.  :mod:`repro.lint`
proves determinism/layering properties *statically*; this package
validates the paper's protocol invariants against *live* simulation
state (checked mode, ``--check``) and bisects two same-seed executions
to the first divergent event (``repro check diverge``) when a
nondeterminism bug slips through anyway.

* :mod:`.checkers` — the invariant catalog (INV1xx codes): value
  conservation, the 40/60 fee split, coinbase maturity, microblock
  signature/rate/size rules, key-block-only chain weight, poison
  forfeiture, tip monotonicity, and mempool/UTXO cross-consistency.
  Checkers implement an incremental protocol (``check_block`` /
  ``on_event`` / ``check_dirty`` plus a ``depends`` component set) and
  share a process-wide :class:`SignatureCache` so each (leader,
  microblock) pair is verified exactly once.
* :mod:`.runtime` — :class:`SanitizerRuntime`, the event-boundary probe
  that sweeps node state through the checkers and captures state
  digests.  Three modes: ``incremental`` (dirty-set tracking, the
  default), ``full`` (the original stateless sweep, cross-check mode),
  and ``audit`` (incremental plus a periodic full-sweep audit that
  asserts incremental ≡ full).  Zero cost when disabled; bit-identical
  when enabled.
* :mod:`.digests` — canonical per-node state digests (tip hash, chain
  weight, mempool fingerprint, UTXO root) and their JSONL stream format.
* :mod:`.bisect` — binary search over two digest streams for the first
  divergent event.
* :mod:`.cli` — the ``repro check`` subcommands.
"""

from .bisect import Divergence, find_divergence
from .checkers import (
    CHECK_MODES,
    InvariantChecker,
    NodeDelta,
    SignatureCache,
    chain_checkers,
    ghost_checkers,
    ng_checkers,
    shared_signature_cache,
)
from .digests import DigestSnapshot, NodeDigest, node_digest
from .runtime import RUNTIME_MODES, AuditDivergence, SanitizerRuntime
from .violations import InvariantViolation, ViolationRecord

__all__ = [
    "AuditDivergence",
    "CHECK_MODES",
    "Divergence",
    "DigestSnapshot",
    "InvariantChecker",
    "InvariantViolation",
    "NodeDelta",
    "NodeDigest",
    "RUNTIME_MODES",
    "SanitizerRuntime",
    "SignatureCache",
    "ViolationRecord",
    "chain_checkers",
    "find_divergence",
    "ghost_checkers",
    "ng_checkers",
    "node_digest",
    "shared_signature_cache",
]
