"""The sanitizer runtime: event-boundary sweeps over live node state.

:class:`SanitizerRuntime` installs itself as the simulator's probe (one
``None``-check per event when nothing is installed) and, every
``stride`` processed events, sweeps each node.  Two sweep strategies:

* **incremental** (the default): a dirty-set tracker snapshots each
  node's cheap change indicators — main-chain tip hash, the mempool and
  UTXO mutation counters, the published-poison count — and skips nodes
  whose state provably did not change since the last sweep.  For dirty
  nodes, block checkers run once per newly adopted main-chain block
  (oldest first, exactly as before) and state checkers run through
  :meth:`~repro.sanitizer.checkers.InvariantChecker.check_dirty`, which
  gates on the components each checker declares in ``depends``.  INV104
  additionally memoizes signature verdicts in the process-wide
  :class:`~repro.sanitizer.checkers.SignatureCache`.
* **full**: the original strategy — every state checker runs against
  every node on every sweep, and INV104 verifies uncached.  Kept as the
  independent cross-check path (``--check=full``).

**audit** mode runs incremental sweeps *plus* a periodic from-scratch
full sweep (every ``audit_stride`` sweeps and once at finalize) using
fresh replica checkers that share no state with the incremental set
(signature replicas carry a private cache, never the process-wide
one).  Any audit finding the incremental
path has not already reported is a dirty-tracking or cache bug in the
sanitizer itself and is surfaced as an ``audit-divergence`` violation
alongside the missed finding.  Transient violations that appeared and
cleared between audits are legitimately absent from an audit, so the
asserted relation is *audit findings ⊆ incremental findings*, per
``(code, node)``.

Violations are collected (deduplicated per ``(code, node)`` so one
broken invariant does not flood the report) and, when a tracer is
attached, emitted as schema-v1 ``invariant_violation`` trace events.

With ``digest_stride > 0`` the runtime also captures a
:class:`~repro.sanitizer.digests.DigestSnapshot` of every node on that
stride — the raw material for ``repro check diverge``.  Digests are
cached per node keyed on the same change indicators, so an unchanged
node never re-hashes its UTXO set.

Everything here is read-only with respect to simulation state: no
events scheduled, no RNG draws, no node mutation.  That is the whole
bit-identicality argument, and ``tests/test_determinism.py`` pins it.
Skipping a read (the incremental strategy's only trick) is trivially
unobservable to the simulation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .checkers import InvariantChecker, NodeDelta, chain_of
from .digests import DigestSnapshot, NodeDigest, node_digest
from .violations import ViolationRecord, make_violation

#: Sweep strategies the runtime understands (``audit`` = incremental
#: sweeps + periodic full-sweep cross-checks).
RUNTIME_MODES = ("incremental", "full", "audit")

#: Audit cadence, in *sweeps* (not events), for ``mode="audit"``.  Each
#: audit re-walks every node's entire main chain from scratch, so the
#: cadence is deliberately sparse — with the default event stride of 64
#: this is one audit per ~64k simulator events, plus the unconditional
#: audit at finalize.
DEFAULT_AUDIT_STRIDE = 1024

#: Sentinel for "this node has no such component" in dirty tracking —
#: distinct from ``None``, which means "present but untracked" and is
#: treated as always-dirty.
_ABSENT = -1


class AuditDivergence(InvariantChecker):
    """Marker for audit findings the incremental path missed.

    Not a protocol invariant: it flags a bug in the *sanitizer* — the
    dirty-set tracker skipped a node it should not have, or the
    signature cache served a wrong verdict.  Recorded alongside the
    missed finding itself.
    """

    code = "SAN901"
    name = "audit-divergence"
    description = (
        "The periodic full-sweep audit found a violation the "
        "incremental path had not reported."
    )
    depends = frozenset()


class SanitizerRuntime:
    """Runs invariant checkers and digest captures during a simulation."""

    def __init__(
        self,
        checkers: Iterable[InvariantChecker],
        *,
        stride: int = 64,
        mode: str = "incremental",
        audit_stride: int | None = None,
        tracer: object | None = None,
        digest_stride: int = 0,
        profiler: object | None = None,
    ) -> None:
        if mode not in RUNTIME_MODES:
            raise ValueError(
                f"unknown sanitizer mode {mode!r} (choose from {RUNTIME_MODES})"
            )
        self.checkers = list(checkers)
        self.stride = max(1, int(stride))
        self.mode = mode
        self.tracer = tracer
        # A repro.prof ProfilerRuntime (or None): when set, sweeps time
        # each checker call with wall_clock and attribute the seconds
        # per invariant code.  Call order, violation recording, and
        # everything the simulation can observe are unchanged.
        self.profiler = profiler
        self.digest_stride = max(0, int(digest_stride))
        if audit_stride is None:
            audit_stride = DEFAULT_AUDIT_STRIDE if mode == "audit" else 0
        self.audit_stride = max(0, int(audit_stride)) if mode != "full" else 0
        self.violations: list[ViolationRecord] = []
        self.digests: list[DigestSnapshot] = []
        self.sweeps = 0
        self.audits = 0
        self.events_seen = 0
        self._sim: object | None = None
        self._nodes: Sequence[object] = ()
        self._node_ids: list[int] = []
        self._seen_blocks: list[set[bytes]] = []
        self._reported: set[tuple[str, int]] = set()
        self._sweep_countdown = self.stride
        self._digest_countdown = self.digest_stride
        self._audit_countdown = self.audit_stride
        # Dirty tracking: last observed (tip hash, mempool version,
        # UTXO version, poison count) per node; None = never swept.
        self._node_state: list[tuple | None] = []
        # Digest cache: (change-indicator key, NodeDigest) per node.
        self._digest_cache: list[tuple[tuple, NodeDigest] | None] = []
        # Fresh uncached replicas for the periodic audit, built lazily.
        self._audit_checkers: list[InvariantChecker] | None = None
        self._audit_marker = AuditDivergence()
        base = InvariantChecker
        # Partitions for the incremental strategy: skip hook calls that
        # are base-class no-ops.  Duck-typed checkers (no subclassing)
        # are included conservatively wherever they define the hook.
        self._block_checkers = [
            checker
            for checker in self.checkers
            if getattr(type(checker), "check_block", None)
            is not base.check_block
            and hasattr(checker, "check_block")
        ]
        self._event_checkers = [
            checker
            for checker in self.checkers
            if getattr(type(checker), "on_event", None) is not None
            and getattr(type(checker), "on_event") is not base.on_event
        ]
        self._dirty_checkers = []
        for checker in self.checkers:
            has_dirty = getattr(type(checker), "check_dirty", None)
            if has_dirty is not None and has_dirty is not base.check_dirty:
                self._dirty_checkers.append(checker)
            elif (
                getattr(type(checker), "check_state", None)
                is not base.check_state
                and hasattr(checker, "check_state")
            ):
                # Overridden state hook behind the default (or absent)
                # check_dirty: the base delegation covers subclasses;
                # legacy duck-typed checkers get a delegating shim.
                self._dirty_checkers.append(
                    checker
                    if has_dirty is not None
                    else _LegacyDirtyShim(checker)
                )

    # -- lifecycle ------------------------------------------------------

    def install(self, sim: object, nodes: Sequence[object]) -> None:
        """Attach to a simulator and the nodes to sweep."""
        self._sim = sim
        self._nodes = list(nodes)
        self._node_ids = [
            getattr(node, "node_id", index)
            for index, node in enumerate(self._nodes)
        ]
        self._seen_blocks = [set() for _ in self._nodes]
        self._node_state = [None for _ in self._nodes]
        self._digest_cache = [None for _ in self._nodes]
        sim.set_probe(self._probe)  # type: ignore[attr-defined]

    def finalize(self) -> None:
        """Final sweep (+ audit) + digest, then detach from the simulator."""
        if self._sim is None:
            return
        self._sweep()
        if self.checkers and self.audit_stride > 0 and self.mode != "full":
            self._audit()
        if self.digest_stride > 0:
            self._capture_digest()
        self._sim.set_probe(None)  # type: ignore[attr-defined]
        self._sim = None

    # -- the probe ------------------------------------------------------

    def _probe(self) -> None:
        self.events_seen += 1
        self._sweep_countdown -= 1
        if self._sweep_countdown <= 0:
            self._sweep_countdown = self.stride
            self._sweep()
        if self.digest_stride > 0:
            self._digest_countdown -= 1
            if self._digest_countdown <= 0:
                self._digest_countdown = self.digest_stride
                self._capture_digest()

    # -- sweeping -------------------------------------------------------

    def _sweep(self) -> None:
        if not self.checkers or self._sim is None:
            return
        if self.mode == "full":
            if self.profiler is not None:
                self._sweep_full_profiled()
            else:
                self._sweep_full()
            return
        if self.profiler is not None:
            self._sweep_incremental_profiled()
        else:
            self._sweep_incremental()
        if self.audit_stride > 0:
            self._audit_countdown -= 1
            if self._audit_countdown <= 0:
                self._audit_countdown = self.audit_stride
                self._audit()

    def _observe(
        self, index: int, node: object, chain: object
    ) -> tuple[list, NodeDelta | None]:
        """One node's dirty-set bookkeeping for this sweep.

        Returns the newly adopted main-chain records (tip-first) and the
        node's :class:`NodeDelta` — or ``None`` for the delta when the
        node provably did not change, in which case the caller skips it.
        """
        seen = self._seen_blocks[index]
        tip = chain.tip_record  # type: ignore[attr-defined]
        cursor = tip
        fresh = []
        while cursor is not None and cursor.hash not in seen:
            fresh.append(cursor)
            cursor = chain.get(cursor.parent_hash)  # type: ignore[attr-defined]
        mempool = getattr(node, "mempool", None)
        utxo = getattr(node, "utxo", None)
        poisons = getattr(node, "poisons_published", None)
        state = (
            tip.hash if tip is not None else None,
            _ABSENT if mempool is None else getattr(mempool, "version", None),
            _ABSENT if utxo is None else getattr(utxo, "version", None),
            len(poisons) if poisons is not None else _ABSENT,
        )
        last = self._node_state[index]
        self._node_state[index] = state
        if last is None:
            # First sweep: everything present is dirty.
            return fresh, NodeDelta(
                chain=True,
                mempool=mempool is not None,
                utxo=utxo is not None,
                poisons=bool(poisons),
                fresh_blocks=tuple(fresh),
            )
        chain_dirty = bool(fresh) or state[0] != last[0]
        mempool_dirty = _component_dirty(state[1], last[1])
        utxo_dirty = _component_dirty(state[2], last[2])
        poisons_dirty = _component_dirty(state[3], last[3])
        if not (chain_dirty or mempool_dirty or utxo_dirty or poisons_dirty):
            return fresh, None
        return fresh, NodeDelta(
            chain=chain_dirty,
            mempool=mempool_dirty,
            utxo=utxo_dirty,
            poisons=poisons_dirty,
            fresh_blocks=tuple(fresh),
        )

    def _sweep_incremental(self) -> None:
        now = self._sim.now  # type: ignore[attr-defined]
        self.sweeps += 1
        for index, node in enumerate(self._nodes):
            node_id = self._node_ids[index]
            chain = chain_of(node)
            fresh, delta = self._observe(index, node, chain)
            if delta is None:
                continue
            seen = self._seen_blocks[index]
            for checker in self._event_checkers:
                checker.on_event(node, node_id, delta, now)
            for record in reversed(fresh):
                seen.add(record.hash)
                for checker in self._block_checkers:
                    for violation in checker.check_block(
                        node, node_id, record, now
                    ):
                        self._record(violation)
            for checker in self._dirty_checkers:
                for violation in checker.check_dirty(
                    node, node_id, delta, now
                ):
                    self._record(violation)

    def _sweep_incremental_profiled(self) -> None:
        """The incremental sweep with per-checker wall-time attribution.

        A verbatim mirror of :meth:`_sweep_incremental` — same node
        order, same checker order, same violation recording — with each
        checker call bracketed by :func:`~repro.clock.wall_clock` reads.
        Kept separate so non-profiled checked runs never pay the clock
        reads.
        """
        from ..clock import wall_clock

        record_checker = self.profiler.record_checker  # type: ignore[attr-defined]
        now = self._sim.now  # type: ignore[attr-defined]
        self.sweeps += 1
        for index, node in enumerate(self._nodes):
            node_id = self._node_ids[index]
            chain = chain_of(node)
            fresh, delta = self._observe(index, node, chain)
            if delta is None:
                continue
            seen = self._seen_blocks[index]
            for checker in self._event_checkers:
                checker.on_event(node, node_id, delta, now)
            for record in reversed(fresh):
                seen.add(record.hash)
                for checker in self._block_checkers:
                    started = wall_clock()
                    violations = checker.check_block(node, node_id, record, now)
                    record_checker(checker.code, wall_clock() - started)
                    for violation in violations:
                        self._record(violation)
            for checker in self._dirty_checkers:
                started = wall_clock()
                violations = checker.check_dirty(node, node_id, delta, now)
                record_checker(checker.code, wall_clock() - started)
                for violation in violations:
                    self._record(violation)

    def _sweep_full(self) -> None:
        now = self._sim.now  # type: ignore[attr-defined]
        self.sweeps += 1
        for index, node in enumerate(self._nodes):
            node_id = self._node_ids[index]
            seen = self._seen_blocks[index]
            chain = chain_of(node)
            cursor = chain.tip_record  # type: ignore[attr-defined]
            fresh = []
            while cursor is not None and cursor.hash not in seen:
                fresh.append(cursor)
                cursor = chain.get(cursor.parent_hash)  # type: ignore[attr-defined]
            for record in reversed(fresh):
                seen.add(record.hash)
                for checker in self.checkers:
                    for violation in checker.check_block(
                        node, node_id, record, now
                    ):
                        self._record(violation)
            for checker in self.checkers:
                for violation in checker.check_state(node, node_id, now):
                    self._record(violation)

    def _sweep_full_profiled(self) -> None:
        """The full sweep with per-checker wall-time attribution.

        A verbatim mirror of :meth:`_sweep_full` — same node order, same
        checker order, same violation recording — with each checker
        call bracketed by :func:`~repro.clock.wall_clock` reads and the
        delta fed to ``profiler.record_checker`` keyed by the checker's
        invariant code.  Checkers return eager lists, so timing the
        call captures the whole verification cost.  Kept separate so
        non-profiled checked runs never pay the clock reads.
        """
        from ..clock import wall_clock

        record_checker = self.profiler.record_checker  # type: ignore[attr-defined]
        now = self._sim.now  # type: ignore[attr-defined]
        self.sweeps += 1
        for index, node in enumerate(self._nodes):
            node_id = self._node_ids[index]
            seen = self._seen_blocks[index]
            chain = chain_of(node)
            cursor = chain.tip_record  # type: ignore[attr-defined]
            fresh = []
            while cursor is not None and cursor.hash not in seen:
                fresh.append(cursor)
                cursor = chain.get(cursor.parent_hash)  # type: ignore[attr-defined]
            for record in reversed(fresh):
                seen.add(record.hash)
                for checker in self.checkers:
                    started = wall_clock()
                    violations = checker.check_block(node, node_id, record, now)
                    record_checker(checker.code, wall_clock() - started)
                    for violation in violations:
                        self._record(violation)
            for checker in self.checkers:
                started = wall_clock()
                violations = checker.check_state(node, node_id, now)
                record_checker(checker.code, wall_clock() - started)
                for violation in violations:
                    self._record(violation)

    # -- the audit ------------------------------------------------------

    def _audit_replicas(self) -> list[InvariantChecker]:
        """Fresh checker instances for the from-scratch audit.

        Built once and reused across audits (stateful checkers like
        tip-monotonicity then track across audit points too).  Checkers
        whose constructors need arguments cannot be replicated blindly
        and are skipped — the audit is a cross-check, not a guarantee of
        total coverage, and skipping is the conservative direction.

        Signature replicas get a *private* per-runtime cache: it shares
        nothing with the process-wide incremental cache (so a bug there
        cannot leak into the audit) while keeping repeat audits from
        re-verifying the same chain prefix every time — without it the
        audit's cost would grow quadratically with run length.
        """
        if self._audit_checkers is None:
            from .checkers import MicroblockSignature, SignatureCache

            audit_cache = SignatureCache()
            replicas: list[InvariantChecker] = []
            for checker in self.checkers:
                try:
                    replica = type(checker)()
                except TypeError:
                    continue
                if isinstance(replica, MicroblockSignature):
                    replica.cache = audit_cache
                replicas.append(replica)
            self._audit_checkers = replicas
        return self._audit_checkers

    def _audit(self) -> None:
        """From-scratch full sweep cross-checking the incremental path.

        Walks every node's entire main chain (ignoring the seen-sets)
        and runs every replica checker's block and state hooks.  Any
        finding whose ``(code, node)`` the incremental path has not
        reported is recorded, plus an ``audit-divergence`` marker.
        """
        if self._sim is None:
            return
        now = self._sim.now  # type: ignore[attr-defined]
        self.audits += 1
        replicas = self._audit_replicas()
        findings: list[ViolationRecord] = []
        for index, node in enumerate(self._nodes):
            node_id = self._node_ids[index]
            chain = chain_of(node)
            cursor = chain.tip_record  # type: ignore[attr-defined]
            records = []
            while cursor is not None:
                records.append(cursor)
                cursor = chain.get(cursor.parent_hash)  # type: ignore[attr-defined]
            for record in reversed(records):
                for checker in replicas:
                    findings.extend(
                        checker.check_block(node, node_id, record, now)
                    )
            for checker in replicas:
                findings.extend(checker.check_state(node, node_id, now))
        for violation in findings:
            if (violation.code, violation.node) in self._reported:
                continue
            self._record(violation)
            self._record(
                make_violation(
                    self._audit_marker,
                    violation.node,
                    now,
                    "full-sweep audit caught a violation the incremental "
                    "path missed",
                    missed_code=violation.code,
                    audit=self.audits,
                )
            )

    def _record(self, violation: ViolationRecord) -> None:
        key = (violation.code, violation.node)
        if key in self._reported:
            return
        self._reported.add(key)
        self.violations.append(violation)
        if self.tracer is not None:
            self.tracer.emit(  # type: ignore[attr-defined]
                "invariant_violation", violation.time, **violation.to_dict()
            )

    # -- digests --------------------------------------------------------

    def _node_digest_cached(self, index: int, node: object) -> NodeDigest:
        """Per-node digest, recomputed only when change indicators moved.

        Hashing a node's UTXO set and mempool is the expensive part of a
        digest capture; the same version counters the dirty tracker uses
        tell us when the previous digest is still exact.  Nodes whose
        ledger objects carry no version counter are recomputed every
        time (correct, just slower).
        """
        chain = chain_of(node)
        tip = chain.tip_record  # type: ignore[attr-defined]
        mempool = getattr(node, "mempool", None)
        utxo = getattr(node, "utxo", None)
        key = (
            tip.hash if tip is not None else None,
            _ABSENT if mempool is None else getattr(mempool, "version", None),
            _ABSENT if utxo is None else getattr(utxo, "version", None),
        )
        cached = self._digest_cache[index]
        if (
            cached is not None
            and key[1] is not None
            and key[2] is not None
            and cached[0] == key
        ):
            return cached[1]
        digest = node_digest(node, self._node_ids[index])
        self._digest_cache[index] = (key, digest)
        return digest

    def _capture_digest(self) -> None:
        if self._sim is None:
            return
        snapshot = DigestSnapshot(
            index=self.events_seen,
            time=self._sim.now,  # type: ignore[attr-defined]
            digests=tuple(
                self._node_digest_cached(index, node)
                for index, node in enumerate(self._nodes)
            ),
        )
        self.digests.append(snapshot)
        if self.tracer is not None:
            self.tracer.emit(  # type: ignore[attr-defined]
                "state_digest",
                snapshot.time,
                index=snapshot.index,
                nodes=len(snapshot.digests),
            )


class _LegacyDirtyShim:
    """Adapts a duck-typed checker with only ``check_state`` to the
    incremental loop: delegates unconditionally (no ``depends`` to gate
    on, so every dirty sweep re-checks — correct, just not minimal)."""

    def __init__(self, checker: object) -> None:
        self._checker = checker
        self.code = getattr(checker, "code", "INV000")

    def check_dirty(
        self, node: object, node_id: int, delta: NodeDelta, now: float
    ) -> list[ViolationRecord]:
        return self._checker.check_state(node, node_id, now)  # type: ignore[attr-defined]


def _component_dirty(current: object, last: object) -> bool:
    """Dirty verdict for one change indicator.

    ``_ABSENT`` (no such component) is never dirty; ``None`` (component
    present but untracked — a foreign mempool type without a ``version``
    counter) is *always* dirty, the conservative direction.
    """
    if current == _ABSENT and last == _ABSENT:
        return False
    if current is None or last is None:
        return True
    return current != last
