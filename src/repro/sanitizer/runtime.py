"""The sanitizer runtime: event-boundary sweeps over live node state.

:class:`SanitizerRuntime` installs itself as the simulator's probe (one
``None``-check per event when nothing is installed) and, every
``stride`` processed events, sweeps each node: block checkers run once
per block the node newly adopted onto its main chain (oldest first),
state checkers run against the current mempool/UTXO/chain.  Violations
are collected (deduplicated per ``(code, node)`` so one broken invariant
does not flood the report) and, when a tracer is attached, emitted as
schema-v1 ``invariant_violation`` trace events.

With ``digest_stride > 0`` the runtime also captures a
:class:`~repro.sanitizer.digests.DigestSnapshot` of every node on that
stride — the raw material for ``repro check diverge``.

Everything here is read-only with respect to simulation state: no
events scheduled, no RNG draws, no node mutation.  That is the whole
bit-identicality argument, and ``tests/test_determinism.py`` pins it.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .checkers import InvariantChecker, chain_of
from .digests import DigestSnapshot, node_digest
from .violations import ViolationRecord


class SanitizerRuntime:
    """Runs invariant checkers and digest captures during a simulation."""

    def __init__(
        self,
        checkers: Iterable[InvariantChecker],
        *,
        stride: int = 64,
        tracer: object | None = None,
        digest_stride: int = 0,
        profiler: object | None = None,
    ) -> None:
        self.checkers = list(checkers)
        self.stride = max(1, int(stride))
        self.tracer = tracer
        # A repro.prof ProfilerRuntime (or None): when set, sweeps time
        # each checker call with wall_clock and attribute the seconds
        # per invariant code.  Call order, violation recording, and
        # everything the simulation can observe are unchanged.
        self.profiler = profiler
        self.digest_stride = max(0, int(digest_stride))
        self.violations: list[ViolationRecord] = []
        self.digests: list[DigestSnapshot] = []
        self.sweeps = 0
        self.events_seen = 0
        self._sim: object | None = None
        self._nodes: Sequence[object] = ()
        self._node_ids: list[int] = []
        self._seen_blocks: list[set[bytes]] = []
        self._reported: set[tuple[str, int]] = set()
        self._sweep_countdown = self.stride
        self._digest_countdown = self.digest_stride

    # -- lifecycle ------------------------------------------------------

    def install(self, sim: object, nodes: Sequence[object]) -> None:
        """Attach to a simulator and the nodes to sweep."""
        self._sim = sim
        self._nodes = list(nodes)
        self._node_ids = [
            getattr(node, "node_id", index)
            for index, node in enumerate(self._nodes)
        ]
        self._seen_blocks = [set() for _ in self._nodes]
        sim.set_probe(self._probe)  # type: ignore[attr-defined]

    def finalize(self) -> None:
        """Final sweep + digest, then detach from the simulator."""
        if self._sim is None:
            return
        self._sweep()
        if self.digest_stride > 0:
            self._capture_digest()
        self._sim.set_probe(None)  # type: ignore[attr-defined]
        self._sim = None

    # -- the probe ------------------------------------------------------

    def _probe(self) -> None:
        self.events_seen += 1
        self._sweep_countdown -= 1
        if self._sweep_countdown <= 0:
            self._sweep_countdown = self.stride
            self._sweep()
        if self.digest_stride > 0:
            self._digest_countdown -= 1
            if self._digest_countdown <= 0:
                self._digest_countdown = self.digest_stride
                self._capture_digest()

    # -- sweeping -------------------------------------------------------

    def _sweep(self) -> None:
        if not self.checkers or self._sim is None:
            return
        if self.profiler is not None:
            self._sweep_profiled()
            return
        now = self._sim.now  # type: ignore[attr-defined]
        self.sweeps += 1
        for index, node in enumerate(self._nodes):
            node_id = self._node_ids[index]
            seen = self._seen_blocks[index]
            chain = chain_of(node)
            cursor = chain.tip_record  # type: ignore[attr-defined]
            fresh = []
            while cursor is not None and cursor.hash not in seen:
                fresh.append(cursor)
                cursor = chain.get(cursor.parent_hash)  # type: ignore[attr-defined]
            for record in reversed(fresh):
                seen.add(record.hash)
                for checker in self.checkers:
                    for violation in checker.check_block(
                        node, node_id, record, now
                    ):
                        self._record(violation)
            for checker in self.checkers:
                for violation in checker.check_state(node, node_id, now):
                    self._record(violation)

    def _sweep_profiled(self) -> None:
        """The sweep with per-checker wall-time attribution.

        A verbatim mirror of :meth:`_sweep` — same node order, same
        checker order, same violation recording — with each checker
        call bracketed by :func:`~repro.clock.wall_clock` reads and the
        delta fed to ``profiler.record_checker`` keyed by the checker's
        invariant code.  Checkers return eager lists, so timing the
        call captures the whole verification cost.  Kept separate so
        non-profiled checked runs never pay the clock reads.
        """
        from ..clock import wall_clock

        record_checker = self.profiler.record_checker  # type: ignore[attr-defined]
        now = self._sim.now  # type: ignore[attr-defined]
        self.sweeps += 1
        for index, node in enumerate(self._nodes):
            node_id = self._node_ids[index]
            seen = self._seen_blocks[index]
            chain = chain_of(node)
            cursor = chain.tip_record  # type: ignore[attr-defined]
            fresh = []
            while cursor is not None and cursor.hash not in seen:
                fresh.append(cursor)
                cursor = chain.get(cursor.parent_hash)  # type: ignore[attr-defined]
            for record in reversed(fresh):
                seen.add(record.hash)
                for checker in self.checkers:
                    started = wall_clock()
                    violations = checker.check_block(node, node_id, record, now)
                    record_checker(checker.code, wall_clock() - started)
                    for violation in violations:
                        self._record(violation)
            for checker in self.checkers:
                started = wall_clock()
                violations = checker.check_state(node, node_id, now)
                record_checker(checker.code, wall_clock() - started)
                for violation in violations:
                    self._record(violation)

    def _record(self, violation: ViolationRecord) -> None:
        key = (violation.code, violation.node)
        if key in self._reported:
            return
        self._reported.add(key)
        self.violations.append(violation)
        if self.tracer is not None:
            self.tracer.emit(  # type: ignore[attr-defined]
                "invariant_violation", violation.time, **violation.to_dict()
            )

    # -- digests --------------------------------------------------------

    def _capture_digest(self) -> None:
        if self._sim is None:
            return
        snapshot = DigestSnapshot(
            index=self.events_seen,
            time=self._sim.now,  # type: ignore[attr-defined]
            digests=tuple(
                node_digest(node, self._node_ids[index])
                for index, node in enumerate(self._nodes)
            ),
        )
        self.digests.append(snapshot)
        if self.tracer is not None:
            self.tracer.emit(  # type: ignore[attr-defined]
                "state_digest",
                snapshot.time,
                index=snapshot.index,
                nodes=len(snapshot.digests),
            )
