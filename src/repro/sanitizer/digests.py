"""Canonical per-node state digests for divergence detection.

A :class:`NodeDigest` compresses everything that makes two same-seed
runs "the same node state" — main-chain tip, chain weight, height, a
mempool fingerprint, and a UTXO root — into a few short hex strings.
A :class:`DigestSnapshot` is one capture of every node's digest at a
known event index, and a stream of snapshots (JSONL, schema v1) is what
``repro check diverge`` bisects.

Digest computation is read-only and draws no randomness, so capturing
digests never perturbs a run.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from hashlib import sha256
from pathlib import Path
from typing import Iterable, Sequence

from ..obs.trace import short_hash
from .checkers import chain_of

#: Stream format version; bump on any incompatible field change.
STREAM_VERSION = 1
#: Hex characters kept from each sha256 fingerprint.
DIGEST_HEX = 12


@dataclass(frozen=True)
class NodeDigest:
    """One node's canonical state fingerprint."""

    node: int
    tip: str  #: main-chain tip hash, 12 hex chars
    weight: int  #: cumulative key-block work at the tip
    height: int  #: main-chain height at the tip
    mempool: str  #: sha256 over sorted pool txids, 12 hex chars
    utxo: str  #: sha256 over the sorted coin map, 12 hex chars

    def to_dict(self) -> dict:
        return {
            "node": self.node,
            "tip": self.tip,
            "weight": self.weight,
            "height": self.height,
            "mempool": self.mempool,
            "utxo": self.utxo,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NodeDigest":
        return cls(
            node=int(data["node"]),
            tip=str(data["tip"]),
            weight=int(data["weight"]),
            height=int(data["height"]),
            mempool=str(data["mempool"]),
            utxo=str(data["utxo"]),
        )

    def format(self) -> str:
        return (
            f"tip={self.tip} weight={self.weight} height={self.height} "
            f"mempool={self.mempool} utxo={self.utxo}"
        )


@dataclass(frozen=True)
class DigestSnapshot:
    """Every node's digest at one point in a run."""

    index: int  #: simulator events processed when captured
    time: float  #: virtual time when captured
    digests: tuple[NodeDigest, ...]

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "time": self.time,
            "digests": [digest.to_dict() for digest in self.digests],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DigestSnapshot":
        return cls(
            index=int(data["index"]),
            time=float(data["time"]),
            digests=tuple(
                NodeDigest.from_dict(entry) for entry in data["digests"]
            ),
        )


def mempool_fingerprint(mempool: object) -> str:
    """Order-independent fingerprint of the pool's transaction ids."""
    hasher = sha256()
    for txid in sorted(mempool.txids()):  # type: ignore[attr-defined]
        hasher.update(txid)
    return hasher.hexdigest()[:DIGEST_HEX]


def utxo_root(utxo: object) -> str:
    """Order-independent fingerprint of the full coin map."""
    hasher = sha256()
    coins = utxo.snapshot()  # type: ignore[attr-defined]
    for outpoint in sorted(coins, key=lambda op: (op.txid, op.index)):
        coin = coins[outpoint]
        hasher.update(outpoint.serialize())
        hasher.update(struct.pack("<qi?", coin.output.value, coin.height, coin.is_coinbase))
        hasher.update(coin.output.pubkey_hash)
    return hasher.hexdigest()[:DIGEST_HEX]


def node_digest(node: object, node_id: int) -> NodeDigest:
    """Compute one node's digest from its live state.

    Nodes without a ledger (GHOST's synthetic-payload nodes) digest as
    ``"-"`` for the mempool/UTXO fields — constant, so divergence can
    still only come from fields the node actually has.
    """
    tip_record = chain_of(node).tip_record  # type: ignore[attr-defined]
    mempool = getattr(node, "mempool", None)
    utxo = getattr(node, "utxo", None)
    return NodeDigest(
        node=node_id,
        tip=short_hash(tip_record.hash),
        weight=tip_record.cumulative_work,
        height=tip_record.height,
        mempool=mempool_fingerprint(mempool) if mempool is not None else "-",
        utxo=utxo_root(utxo) if utxo is not None else "-",
    )


def save_stream(
    path: str | Path,
    snapshots: Sequence[DigestSnapshot],
    meta: dict | None = None,
) -> None:
    """Write a digest stream as JSONL: one header line, one per snapshot."""
    header = {"v": STREAM_VERSION, "kind": "digest_stream"}
    if meta:
        header.update(meta)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for snapshot in snapshots:
            handle.write(json.dumps(snapshot.to_dict(), sort_keys=True) + "\n")


def load_stream(path: str | Path) -> list[DigestSnapshot]:
    """Read a digest stream; raises ValueError on the wrong format."""
    with open(path, "r", encoding="utf-8") as handle:
        lines: Iterable[str] = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty digest stream")
    header = json.loads(lines[0])
    if header.get("kind") != "digest_stream":
        raise ValueError(f"{path}: not a digest stream")
    if header.get("v") != STREAM_VERSION:
        raise ValueError(
            f"{path}: unsupported digest stream version {header.get('v')}"
        )
    return [DigestSnapshot.from_dict(json.loads(line)) for line in lines[1:]]
