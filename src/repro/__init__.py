"""repro — a full reproduction of Bitcoin-NG (Eyal et al., NSDI 2016).

Bitcoin-NG decouples Nakamoto consensus into leader election
(proof-of-work *key blocks*) and transaction serialization
(leader-signed *microblocks*), scaling throughput to node capacity and
latency to network propagation time while keeping Bitcoin's trust model.

Package map
-----------
``repro.core``
    The paper's contribution: key blocks, microblocks, epochs, the
    40/60 fee split, poison transactions, and the Section 5 incentive
    analysis.
``repro.bitcoin`` / ``repro.ghost``
    The baselines: Bitcoin's heaviest-chain protocol and the GHOST
    heaviest-subtree rule.
``repro.crypto`` / ``repro.ledger``
    From-scratch substrates: secp256k1 ECDSA, Merkle trees, proof-of-
    work targets; UTXO transactions, validation, mempool.
``repro.net`` / ``repro.mining``
    The testbed: a deterministic discrete-event network (latency
    histograms, per-link bandwidth, inv/getdata gossip) and simulated
    mining (exponential scheduler, pool-shaped power).
``repro.metrics``
    The Section 6 metrics: consensus delay, fairness, mining power
    utilization, time to prune, time to win.
``repro.experiments``
    The Figure 7/8 harness: runner, sweeps, propagation study,
    reporting.
``repro.protocols``
    The protocol-adapter registry the runner builds nodes through;
    register an adapter to plug a new protocol into every experiment.
``repro.scenarios``
    Deterministic fault injection: declarative JSON scenarios scheduling
    crashes, restarts, partitions, link degradation, and message loss.
``repro.attacks``
    Security studies: selfish mining, microblock-fork double spends and
    poison response, eclipse attacks, censorship, fee-strategy
    simulations.
``repro.wallet`` / ``repro.query``
    User-side machinery: deterministic key chains, coin selection,
    payment building, §4.3 confirmation tracking, chain queries.
``repro.analysis`` / ``repro.stats``
    Closed-form fork/growth models and shared statistics helpers.
``repro.store`` / ``repro.wire`` / ``repro.encoding``
    Byte-exact block codecs and a crash-recovering block store.
``repro.cli``
    The ``python -m repro`` command line.
``repro.api``
    The stable public facade: one import surface re-exporting the
    supported names (configs, runner, sweeps, adapter registry,
    sanitizer, profiler).  Scripts and notebooks should import from
    here; internal module layout may shift, these names will not.

Quickstart
----------
>>> from repro.api import ExperimentConfig, Protocol, run_experiment
>>> config = ExperimentConfig(protocol=Protocol.BITCOIN_NG, n_nodes=50,
...                           block_rate=0.1, block_size_bytes=20_000,
...                           target_blocks=40)
>>> result, log = run_experiment(config)
>>> 0 <= result.mining_power_utilization <= 1
True
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "api",
    "attacks",
    "bitcoin",
    "core",
    "crypto",
    "experiments",
    "ghost",
    "ledger",
    "metrics",
    "mining",
    "net",
    "protocols",
    "query",
    "scenarios",
    "stats",
    "store",
    "wallet",
    "wire",
]
