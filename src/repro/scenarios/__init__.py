"""Deterministic fault-injection scenarios.

Declarative fault scripts — node crashes and restarts, timed network
partitions and heals, link degradation, probabilistic message loss —
validated by :mod:`repro.scenarios.spec` and executed against a running
simulation by :class:`~repro.scenarios.engine.ScenarioEngine`.  See
``docs/scenarios.md`` for the spec format and worked examples.
"""

from .engine import ScenarioEngine
from .spec import (
    FAULT_KINDS,
    SCENARIO_VERSION,
    ScenarioError,
    load_scenario,
    validate_scenario,
)

__all__ = [
    "FAULT_KINDS",
    "SCENARIO_VERSION",
    "ScenarioEngine",
    "ScenarioError",
    "load_scenario",
    "validate_scenario",
]
