"""Scenario specifications: plain-dict fault scripts, validated.

A scenario is a JSON-friendly dict — schema-versioned, picklable, and
carried on :class:`~repro.experiments.config.ExperimentConfig` so it
round-trips through process-pool sweep workers unchanged::

    {
      "version": 1,
      "name": "leader-crash",
      "faults": [
        {"at": 150.0, "kind": "crash", "node": "leader", "down_for": 300.0},
        {"at": 600.0, "kind": "partition", "split": "halves"},
        {"at": 800.0, "kind": "heal"}
      ]
    }

Fault kinds (all faults carry ``at``, the virtual-time trigger):

``crash``
    Take ``node`` (an id, or ``"leader"`` resolved at fire time) off
    the network, zero its mining power, and drop its volatile protocol
    state.  Optional ``down_for`` schedules the matching restart.
``restart``
    Bring a crashed ``node`` (an id) back online and resync it.
``partition``
    Split the topology with the partition controller: either explicit
    ``groups`` (disjoint lists of node ids) or ``split: "halves"``.
``heal``
    Remove the active partition.
``degrade``
    Multiply link latency by ``latency_mult`` and/or bandwidth by
    ``bandwidth_mult`` (> 0; bandwidth multipliers < 1 throttle) on
    ``links`` ([[a, b], ...] pairs) or, by default, every link.
    Multipliers are always relative to the pristine link parameters.
``restore``
    Reset every degraded link to its original parameters.
``loss``
    Drop each subsequent send independently with probability ``rate``
    (0 ≤ rate < 1); ``rate: 0`` ends the lossy window.  Draws come
    from the dedicated fault RNG stream, never the simulation RNG.

The schema is strict — unknown fault kinds or stray fields are errors,
so a typo fails loudly at config time instead of silently injecting
nothing.  Meaning changes bump :data:`SCENARIO_VERSION`.
"""

from __future__ import annotations

import json
from pathlib import Path

SCENARIO_VERSION = 1

FAULT_KINDS = (
    "crash",
    "restart",
    "partition",
    "heal",
    "degrade",
    "restore",
    "loss",
)

# Allowed fields per fault kind, beyond the common "at"/"kind".
_FAULT_FIELDS = {
    "crash": {"node", "down_for"},
    "restart": {"node"},
    "partition": {"groups", "split"},
    "heal": set(),
    "degrade": {"latency_mult", "bandwidth_mult", "links"},
    "restore": set(),
    "loss": {"rate"},
}


class ScenarioError(ValueError):
    """Raised when a scenario spec is malformed or cannot be applied."""


def _require_number(
    fault: dict, key: str, index: int, minimum: float = 0.0
) -> float:
    value = fault.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ScenarioError(f"fault #{index}: {key!r} must be a number")
    if value < minimum:
        raise ScenarioError(f"fault #{index}: {key!r} must be >= {minimum}")
    return float(value)


def _validate_node(fault: dict, index: int, allow_leader: bool) -> int | str:
    node = fault.get("node")
    if node == "leader" and allow_leader:
        return node
    if isinstance(node, int) and not isinstance(node, bool) and node >= 0:
        return node
    expected = "a node id" + (' or "leader"' if allow_leader else "")
    raise ScenarioError(f"fault #{index}: `node` must be {expected}")


def _validate_fault(fault: object, index: int) -> dict:
    if not isinstance(fault, dict):
        raise ScenarioError(f"fault #{index}: must be an object")
    kind = fault.get("kind")
    if kind not in FAULT_KINDS:
        raise ScenarioError(
            f"fault #{index}: unknown kind {kind!r} "
            f"(one of: {', '.join(FAULT_KINDS)})"
        )
    allowed = _FAULT_FIELDS[kind] | {"at", "kind"}
    stray = set(fault) - allowed
    if stray:
        raise ScenarioError(
            f"fault #{index} ({kind}): unexpected fields {sorted(stray)}"
        )
    out: dict = {"at": _require_number(fault, "at", index), "kind": kind}

    if kind == "crash":
        out["node"] = _validate_node(fault, index, allow_leader=True)
        if "down_for" in fault:
            down_for = _require_number(fault, "down_for", index)
            if down_for <= 0:
                raise ScenarioError(f"fault #{index}: `down_for` must be > 0")
            out["down_for"] = down_for
    elif kind == "restart":
        out["node"] = _validate_node(fault, index, allow_leader=False)
    elif kind == "partition":
        groups = fault.get("groups")
        split = fault.get("split")
        if (groups is None) == (split is None):
            raise ScenarioError(
                f"fault #{index}: give exactly one of `groups` or `split`"
            )
        if split is not None:
            if split != "halves":
                raise ScenarioError(
                    f"fault #{index}: unknown split {split!r} "
                    '(only "halves" is defined)'
                )
            out["split"] = split
        else:
            if not isinstance(groups, list) or len(groups) < 2:
                raise ScenarioError(
                    f"fault #{index}: `groups` needs >= 2 lists of node ids"
                )
            seen: set[int] = set()
            clean_groups = []
            for group in groups:
                if not isinstance(group, list) or not group:
                    raise ScenarioError(
                        f"fault #{index}: each group must be a non-empty list"
                    )
                for node in group:
                    if not isinstance(node, int) or isinstance(node, bool):
                        raise ScenarioError(
                            f"fault #{index}: group members must be node ids"
                        )
                    if node in seen:
                        raise ScenarioError(
                            f"fault #{index}: node {node} is in two groups"
                        )
                    seen.add(node)
                clean_groups.append(list(group))
            out["groups"] = clean_groups
    elif kind == "degrade":
        out["latency_mult"] = (
            _require_number(fault, "latency_mult", index)
            if "latency_mult" in fault
            else 1.0
        )
        out["bandwidth_mult"] = (
            _require_number(fault, "bandwidth_mult", index)
            if "bandwidth_mult" in fault
            else 1.0
        )
        if out["latency_mult"] <= 0 or out["bandwidth_mult"] <= 0:
            raise ScenarioError(
                f"fault #{index}: degradation multipliers must be > 0"
            )
        if "links" in fault:
            links = fault["links"]
            if not isinstance(links, list) or not links:
                raise ScenarioError(
                    f"fault #{index}: `links` must be a non-empty list of pairs"
                )
            pairs = []
            for pair in links:
                if (
                    not isinstance(pair, list)
                    or len(pair) != 2
                    or not all(
                        isinstance(n, int) and not isinstance(n, bool)
                        for n in pair
                    )
                ):
                    raise ScenarioError(
                        f"fault #{index}: each link must be a [src, dst] pair"
                    )
                pairs.append(list(pair))
            out["links"] = pairs
    elif kind == "loss":
        rate = _require_number(fault, "rate", index)
        if not 0.0 <= rate < 1.0:
            raise ScenarioError(
                f"fault #{index}: `rate` must be in [0, 1)"
            )
        out["rate"] = rate
    return out


def validate_scenario(spec: object) -> dict:
    """Check ``spec`` against the schema; return a normalized copy.

    Normalization fills the optional ``name``, coerces numerics to
    float, and sorts faults by trigger time (stable, so same-time
    faults keep file order).
    """
    if not isinstance(spec, dict):
        raise ScenarioError("scenario must be a dict/JSON object")
    version = spec.get("version")
    if version != SCENARIO_VERSION:
        raise ScenarioError(
            f"unsupported scenario version {version!r} "
            f"(this build understands {SCENARIO_VERSION})"
        )
    stray = set(spec) - {"version", "name", "description", "faults"}
    if stray:
        raise ScenarioError(f"unexpected scenario fields {sorted(stray)}")
    name = spec.get("name", "scenario")
    if not isinstance(name, str):
        raise ScenarioError("scenario `name` must be a string")
    faults = spec.get("faults")
    if not isinstance(faults, list):
        raise ScenarioError("scenario needs a `faults` list (may be empty)")
    normalized = [
        _validate_fault(fault, index) for index, fault in enumerate(faults)
    ]
    normalized.sort(key=lambda fault: fault["at"])
    out = {
        "version": SCENARIO_VERSION,
        "name": name,
        "faults": normalized,
    }
    if "description" in spec:
        out["description"] = str(spec["description"])
    return out


def load_scenario(path: str | Path) -> dict:
    """Read and validate a scenario JSON file."""
    target = Path(path)
    try:
        raw = json.loads(target.read_text(encoding="utf-8"))
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario {target}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{target}: not valid JSON: {exc}") from exc
    return validate_scenario(raw)
