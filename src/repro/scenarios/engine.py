"""The deterministic fault-injection engine.

A :class:`ScenarioEngine` takes a validated scenario spec and a built
simulation (simulator, network, nodes, adapter, scheduler) and turns
each fault into an event on the simulation clock.  Three properties
make scenarios safe to mix with every other experiment axis:

* **Determinism** — the only randomness a scenario may consume
  (probabilistic message loss) is drawn from a dedicated fault RNG
  stream seeded from the experiment seed, never from the simulation
  RNG.  The same scenario and seed therefore replays bit-identically,
  serially or across process-pool workers.
* **Zero-cost absence** — an engine over an empty fault list schedules
  nothing and touches nothing, so an empty scenario is bit-identical
  to a bare run.
* **Protocol independence** — node lifecycle goes through the
  :class:`~repro.protocols.ProtocolAdapter` surface (``on_crash`` /
  ``on_restart`` / ``resync``), so one engine drives Bitcoin, GHOST,
  Bitcoin-NG, and anything registered later.

Every fired fault emits a trace event (``node_crash``,
``node_restart``, ``partition``, ``heal``, ``link_degrade``,
``link_restore``, ``msg_loss``) so ``repro trace timeline`` shows
faults interleaved with consensus activity.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any

from ..net.partitions import PartitionController
from .spec import ScenarioError, validate_scenario

if TYPE_CHECKING:
    from collections.abc import Sequence

    from ..mining.scheduler import MiningScheduler
    from ..net.gossip import GossipNode
    from ..net.network import Network
    from ..net.simulator import Simulator
    from ..protocols import ProtocolAdapter

# Offset folded into the experiment seed for the fault RNG stream; far
# from the topology (7919) and latency (104729) stream constants.
FAULT_RNG_SALT = 65537


class ScenarioEngine:
    """Schedules and executes one scenario against a built simulation."""

    def __init__(
        self,
        scenario: dict,
        *,
        sim: Simulator,
        network: Network,
        nodes: Sequence[GossipNode],
        adapter: ProtocolAdapter,
        scheduler: MiningScheduler | None = None,
        shares: list[float] | None = None,
        seed: int = 0,
        tracer: Any | None = None,
    ) -> None:
        self.scenario = validate_scenario(scenario)
        self.sim = sim
        self.network = network
        self.nodes = nodes
        self.adapter = adapter
        self.scheduler = scheduler
        # Original mining power per node, restored on restart.  Falls
        # back to the scheduler's current powers when not given.
        if shares is None and scheduler is not None:
            shares = list(scheduler._powers)
        self.shares = shares
        self.fault_rng = random.Random(seed * FAULT_RNG_SALT + 97)
        self.tracer = tracer
        self.partitions = PartitionController(network)
        self.crashed: set[int] = set()
        self.faults_fired = 0
        self._installed = False
        self._check_bounds()

    # -- validation against the built network -------------------------------

    def _check_bounds(self) -> None:
        """Reject node ids the topology does not have, before running."""
        n = self.network.topology.n_nodes

        def check(node: object, fault: dict) -> None:
            if isinstance(node, int) and not 0 <= node < n:
                raise ScenarioError(
                    f"scenario {self.scenario['name']!r}: node {node} out of "
                    f"range for a {n}-node network ({fault['kind']} fault)"
                )

        for fault in self.scenario["faults"]:
            check(fault.get("node"), fault)
            for group in fault.get("groups", ()):
                for node in group:
                    check(node, fault)
            for pair in fault.get("links", ()):
                for node in pair:
                    check(node, fault)

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> int:
        """Schedule every fault on the simulation clock; returns count."""
        if self._installed:
            raise RuntimeError("scenario already installed")
        self._installed = True
        for fault in self.scenario["faults"]:
            self.sim.schedule_at(fault["at"], self._fire, fault)
        return len(self.scenario["faults"])

    def _fire(self, fault: dict) -> None:
        kind = fault["kind"]
        if kind == "crash":
            self._crash(fault)
        elif kind == "restart":
            self._restart(fault["node"])
        elif kind == "partition":
            self._partition(fault)
        elif kind == "heal":
            self._heal()
        elif kind == "degrade":
            self._degrade(fault)
        elif kind == "restore":
            self._restore()
        else:  # "loss" — the spec admits nothing else
            self._loss(fault["rate"])
        self.faults_fired += 1

    def _emit(self, event: str, **fields: Any) -> None:
        if self.tracer is not None:
            self.tracer.emit(event, self.sim.now, **fields)

    # -- node lifecycle faults ----------------------------------------------

    def _resolve(self, node: int | str) -> int | None:
        if isinstance(node, str):  # the spec admits only "leader"
            return self.adapter.current_leader(self.nodes)
        return node  # already an int, bounds-checked at construction

    def _crash(self, fault: dict) -> None:
        node_id = self._resolve(fault["node"])
        if node_id is None or node_id in self.crashed:
            return  # no current leader / already down: nothing to kill
        if self.scheduler is not None:
            if self.scheduler.power_share(node_id) >= 1.0:
                raise ScenarioError(
                    f"scenario {self.scenario['name']!r}: crashing node "
                    f"{node_id} would zero all mining power"
                )
            self.scheduler.set_power(node_id, 0.0)
        self.crashed.add(node_id)
        self.network.set_offline(node_id)
        self.adapter.on_crash(
            self.nodes[node_id], sim=self.sim, network=self.network
        )
        down_for = fault.get("down_for")
        self._emit(
            "node_crash",
            node=node_id,
            **({"down_for": down_for} if down_for else {}),
        )
        if down_for:
            self.sim.schedule(down_for, self._restart, node_id)

    def _restart(self, node_id: int) -> None:
        if node_id not in self.crashed:
            return  # never crashed (or already restarted): no-op
        self.crashed.discard(node_id)
        self.network.set_online(node_id)
        if self.scheduler is not None and self.shares is not None:
            self.scheduler.set_power(node_id, self.shares[node_id])
        self._emit("node_restart", node=node_id)
        # After the event so the trace reads crash → restart → resync
        # traffic in causal order.
        self.adapter.on_restart(
            self.nodes[node_id], sim=self.sim, network=self.network
        )

    # -- network faults -----------------------------------------------------

    def _partition_groups(self, fault: dict) -> list[set[int]]:
        if "groups" in fault:
            return [set(group) for group in fault["groups"]]
        half = self.network.topology.n_nodes // 2
        return [
            set(range(half)),
            set(range(half, self.network.topology.n_nodes)),
        ]

    def _partition(self, fault: dict) -> None:
        if self.partitions.active:
            # A scripted re-split replaces the active partition.
            self.partitions.heal()
        groups = self._partition_groups(fault)
        cut = self.partitions.split(groups)
        self._emit("partition", groups=len(groups), cut=cut)

    def _heal(self) -> None:
        if not self.partitions.active:
            return
        restored = len(self.partitions._cut_links)
        self.partitions.heal()
        self._emit("heal", restored=restored)

    def _degrade(self, fault: dict) -> None:
        pairs = fault.get("links")
        affected = self.network.degrade_links(
            latency_mult=fault["latency_mult"],
            bandwidth_mult=fault["bandwidth_mult"],
            pairs=[tuple(pair) for pair in pairs] if pairs else None,
        )
        self._emit(
            "link_degrade",
            links=affected,
            latency_mult=fault["latency_mult"],
            bandwidth_mult=fault["bandwidth_mult"],
        )

    def _restore(self) -> None:
        restored = self.network.restore_links()
        if restored:
            self._emit("link_restore", links=restored)

    def _loss(self, rate: float) -> None:
        self.network.set_loss(rate, self.fault_rng)
        self._emit("msg_loss", rate=rate)
