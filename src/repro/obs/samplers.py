"""Periodic samplers: time series the end-of-run metrics cannot show.

End-of-run aggregates say *what* a run produced; the congested and
adversarial regimes the related work probes need *how* it unfolded —
link saturation climbing, mempools backing up, fork churn around leader
changes.  Each sampler schedules itself on the :class:`Simulator` at a
fixed period, reads state without mutating anything (and without
touching the simulation RNG, preserving bit-identical results), emits
one trace record, and updates gauges in the registry.
"""

from __future__ import annotations

from typing import Sequence


class PeriodicSampler:
    """Base: fires :meth:`sample` every ``period`` virtual seconds.

    Sampling starts one period after :meth:`start` and stops after
    ``until`` (the simulator also naturally stops it when the run's
    horizon ends).  Subclasses must not mutate simulation state or draw
    from ``sim.rng``.
    """

    def __init__(self, period: float, until: float | None = None) -> None:
        if period <= 0:
            raise ValueError(f"sampler period must be positive, got {period}")
        self.period = period
        self.until = until
        self.samples_taken = 0
        self._sim = None

    def start(self, sim) -> None:
        self._sim = sim
        sim.schedule(self.period, self._fire)

    def _fire(self) -> None:
        sim = self._sim
        if self.until is not None and sim.now > self.until + 1e-12:
            return
        self.sample(sim.now)
        self.samples_taken += 1
        next_time = sim.now + self.period
        if self.until is None or next_time <= self.until + 1e-12:
            sim.schedule(self.period, self._fire)

    def sample(self, now: float) -> None:
        raise NotImplementedError


class LinkSampler(PeriodicSampler):
    """Busy fraction and queued bytes across every directed link.

    Reads :meth:`~repro.net.network.Network.link_utilization`, which
    walks the array core's flat edge-id arrays directly — a sampled
    1000-node run never materializes per-link ``LinkView`` objects on
    the sampling path.
    """

    def __init__(
        self,
        network,
        tracer=None,
        registry=None,
        period: float = 1.0,
        until: float | None = None,
    ) -> None:
        super().__init__(period, until)
        self.network = network
        self.tracer = tracer
        if registry is not None:
            self._g_busy = registry.gauge(
                "obs_link_busy_fraction",
                "fraction of directed links mid-serialization at sample time",
            )
            self._g_queued = registry.gauge(
                "obs_link_queued_bytes",
                "bytes awaiting serialization across all links at sample time",
            )
            self._g_peak = registry.gauge(
                "obs_link_queued_bytes_peak",
                "largest queued-bytes sample seen during the run",
            )
        else:
            self._g_busy = self._g_queued = self._g_peak = None
        self._peak = 0.0

    def sample(self, now: float) -> None:
        busy, total, queued = self.network.link_utilization(now)
        fraction = busy / total if total else 0.0
        if queued > self._peak:
            self._peak = queued
        if self._g_busy is not None:
            self._g_busy.set(fraction)
            self._g_queued.set(queued)
            self._g_peak.set(self._peak)
        if self.tracer is not None:
            self.tracer.emit(
                "sample_links",
                now,
                busy=busy,
                links=total,
                frac=round(fraction, 6),
                queued_bytes=round(queued, 1),
            )


class MempoolSampler(PeriodicSampler):
    """Per-node mempool depth, summarized as min/mean/max/total."""

    def __init__(
        self,
        nodes: Sequence,
        tracer=None,
        registry=None,
        period: float = 1.0,
        until: float | None = None,
    ) -> None:
        super().__init__(period, until)
        self.nodes = nodes
        self.tracer = tracer
        if registry is not None:
            self._g_total = registry.gauge(
                "obs_mempool_txs_total",
                "pending transactions summed over all nodes at sample time",
            )
            self._g_max = registry.gauge(
                "obs_mempool_txs_max",
                "deepest single-node mempool at sample time",
            )
        else:
            self._g_total = self._g_max = None

    def sample(self, now: float) -> None:
        # Not every protocol node keeps a mempool (GHOST nodes mine
        # synthetic payloads directly); treat those as empty.
        depths = [len(getattr(node, "mempool", ())) for node in self.nodes]
        total = sum(depths)
        deepest = max(depths) if depths else 0
        if self._g_total is not None:
            self._g_total.set(total)
            self._g_max.set(deepest)
        if self.tracer is not None:
            self.tracer.emit(
                "sample_mempool",
                now,
                total=total,
                min=min(depths) if depths else 0,
                max=deepest,
                mean=round(total / len(depths), 3) if depths else 0.0,
            )


class ForkSampler(PeriodicSampler):
    """Fork churn: how many distinct tips the network holds right now.

    One tip means full agreement; more means in-flight forks — the
    paper's subjective-fork regime made visible over time.
    """

    def __init__(
        self,
        nodes: Sequence,
        tracer=None,
        registry=None,
        period: float = 1.0,
        until: float | None = None,
    ) -> None:
        super().__init__(period, until)
        self.nodes = nodes
        self.tracer = tracer
        if registry is not None:
            self._g_tips = registry.gauge(
                "obs_distinct_tips",
                "distinct main-chain tips across nodes at sample time",
            )
            self._g_peak = registry.gauge(
                "obs_distinct_tips_peak",
                "largest distinct-tip sample seen during the run",
            )
        else:
            self._g_tips = self._g_peak = None
        self._peak = 0

    def sample(self, now: float) -> None:
        tips = len({node.tip for node in self.nodes})
        if tips > self._peak:
            self._peak = tips
        if self._g_tips is not None:
            self._g_tips.set(tips)
            self._g_peak.set(self._peak)
        if self.tracer is not None:
            self.tracer.emit("sample_forks", now, tips=tips)
