"""Observability: metric registry, structured traces, periodic samplers.

The instrumentation layer for the simulation stack.  See
``docs/observability.md`` for usage; the short version::

    from repro.experiments import ExperimentConfig, run_experiment

    config = ExperimentConfig(obs_dir="out")   # enables everything
    result, log = run_experiment(config)
    # out/<slug>.trace.jsonl  — schema-versioned event trace
    # out/<slug>.metrics.json — metric registry snapshot
    # result.obs              — the same snapshot, in-process

Disabled (the default) costs nothing measurable: hot paths hold either
a live tracer or ``None`` and the null registry hands out no-op metric
singletons.
"""

from .analyze import (
    FAULT_EVENTS,
    TraceSummary,
    find_traces,
    format_summary,
    format_timeline,
    format_toptalkers,
    iter_records,
    load_records,
    summarize,
)
from .facade import NULL_OBS, Observability, config_slug
from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricRegistry,
    NULL_METRIC,
    NULL_REGISTRY,
    NullRegistry,
)
from .samplers import ForkSampler, LinkSampler, MempoolSampler, PeriodicSampler
from .trace import (
    JsonlSink,
    MemorySink,
    SCHEMA_VERSION,
    TraceError,
    Tracer,
    short_hash,
)

__all__ = [
    "Counter",
    "FAULT_EVENTS",
    "ForkSampler",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LinkSampler",
    "MemorySink",
    "MempoolSampler",
    "MetricError",
    "MetricRegistry",
    "NULL_METRIC",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NullRegistry",
    "Observability",
    "PeriodicSampler",
    "SCHEMA_VERSION",
    "TraceError",
    "TraceSummary",
    "Tracer",
    "config_slug",
    "find_traces",
    "format_summary",
    "format_timeline",
    "format_toptalkers",
    "iter_records",
    "load_records",
    "short_hash",
    "summarize",
]
