"""Offline trace analysis: the engine behind ``repro trace``.

Pure functions over saved JSONL traces — no simulator required — so a
run captured once can be summarized, bucketed into a timeline, or
ranked by per-node traffic long after (and far from) the machine that
produced it.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .trace import SCHEMA_VERSION, TraceError

TRACE_SUFFIX = ".trace.jsonl"

# Events emitted by the fault-injection engine (repro.scenarios).
FAULT_EVENTS = (
    "node_crash",
    "node_restart",
    "partition",
    "heal",
    "link_degrade",
    "link_restore",
    "msg_loss",
)


def find_traces(path: str | Path) -> list[Path]:
    """Trace files under ``path``: itself if a file, else ``*.trace.jsonl``."""
    target = Path(path)
    if target.is_file():
        return [target]
    if target.is_dir():
        traces = sorted(target.glob(f"*{TRACE_SUFFIX}"))
        if not traces:
            raise TraceError(f"no {TRACE_SUFFIX} files under {target}")
        return traces
    raise TraceError(f"no such file or directory: {target}")


def iter_records(path: str | Path) -> Iterator[dict]:
    """Parse one JSONL trace, validating the schema version per record."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"{path}:{line_no}: not valid JSON: {exc}"
                ) from exc
            version = record.get("v")
            if version != SCHEMA_VERSION:
                raise TraceError(
                    f"{path}:{line_no}: unsupported schema version {version!r}"
                )
            yield record


def load_records(path: str | Path) -> list[dict]:
    return list(iter_records(path))


# -- summarize ---------------------------------------------------------------


@dataclass
class TraceSummary:
    """Aggregates of one trace file."""

    records: int = 0
    t_min: float = 0.0
    t_max: float = 0.0
    events: dict[str, int] = field(default_factory=dict)
    sends_by_kind: dict[str, int] = field(default_factory=dict)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    queue_delay_count: int = 0
    queue_delay_sum: float = 0.0
    queue_delay_max: float = 0.0
    blocks_by_kind: dict[str, int] = field(default_factory=dict)
    tip_changes: int = 0
    epochs_started: int = 0
    epochs_ended: int = 0
    gossip_retries: int = 0
    rejects: int = 0
    drops: int = 0
    peak_queued_bytes: float = 0.0
    peak_busy_fraction: float = 0.0
    peak_mempool: int = 0
    peak_tips: int = 0
    faults: dict[str, int] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @property
    def queue_delay_mean(self) -> float:
        if not self.queue_delay_count:
            return 0.0
        return self.queue_delay_sum / self.queue_delay_count

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())


def summarize(records: Iterable[dict]) -> TraceSummary:
    """Fold a record stream into a :class:`TraceSummary`."""
    summary = TraceSummary()
    events: TallyCounter = TallyCounter()
    t_min = None
    t_max = None
    for record in records:
        ev = record["ev"]
        events[ev] += 1
        t = record.get("t", 0.0)
        if ev not in ("trace_start", "trace_end"):
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
        if ev == "trace_start":
            summary.meta = {
                k: v for k, v in record.items() if k not in ("v", "ev", "t")
            }
        elif ev == "send":
            kind = record.get("kind", "?")
            summary.sends_by_kind[kind] = summary.sends_by_kind.get(kind, 0) + 1
            summary.bytes_by_kind[kind] = summary.bytes_by_kind.get(
                kind, 0
            ) + record.get("size", 0)
            delay = record.get("qd", 0.0)
            if delay > 0:
                summary.queue_delay_count += 1
                summary.queue_delay_sum += delay
                summary.queue_delay_max = max(summary.queue_delay_max, delay)
        elif ev == "block_gen":
            kind = record.get("kind", "?")
            summary.blocks_by_kind[kind] = (
                summary.blocks_by_kind.get(kind, 0) + 1
            )
        elif ev == "tip_change":
            summary.tip_changes += 1
        elif ev == "epoch_start":
            summary.epochs_started += 1
        elif ev == "epoch_end":
            summary.epochs_ended += 1
        elif ev == "gossip_retry":
            summary.gossip_retries += 1
        elif ev == "obj_reject":
            summary.rejects += 1
        elif ev == "drop":
            summary.drops += 1
        elif ev == "sample_links":
            summary.peak_queued_bytes = max(
                summary.peak_queued_bytes, record.get("queued_bytes", 0.0)
            )
            summary.peak_busy_fraction = max(
                summary.peak_busy_fraction, record.get("frac", 0.0)
            )
        elif ev == "sample_mempool":
            summary.peak_mempool = max(
                summary.peak_mempool, record.get("max", 0)
            )
        elif ev == "sample_forks":
            summary.peak_tips = max(summary.peak_tips, record.get("tips", 0))
        elif ev in FAULT_EVENTS:
            summary.faults[ev] = summary.faults.get(ev, 0) + 1
    summary.events = dict(sorted(events.items()))
    summary.records = sum(events.values())
    summary.t_min = t_min if t_min is not None else 0.0
    summary.t_max = t_max if t_max is not None else 0.0
    return summary


def format_summary(summary: TraceSummary, name: str = "") -> str:
    """Human-readable report of one trace."""
    lines: list[str] = []
    if name:
        lines.append(f"== {name} ==")
    if summary.meta:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(summary.meta.items()))
        lines.append(f"run:                 {meta}")
    lines.append(f"records:             {summary.records}")
    lines.append(
        f"time span:           {summary.t_min:.1f} .. {summary.t_max:.1f} s"
    )
    for ev, count in summary.events.items():
        lines.append(f"  {ev + ':':<19}{count}")
    if summary.sends_by_kind:
        lines.append("traffic by kind:")
        for kind in sorted(summary.sends_by_kind):
            lines.append(
                f"  {kind + ':':<19}{summary.sends_by_kind[kind]} msgs, "
                f"{summary.bytes_by_kind.get(kind, 0):,} bytes"
            )
        lines.append(f"total bytes sent:    {summary.total_bytes:,}")
    lines.append(
        "queueing delay:      "
        f"{summary.queue_delay_count} delayed sends, "
        f"mean {summary.queue_delay_mean:.3f} s, "
        f"max {summary.queue_delay_max:.3f} s"
    )
    if summary.blocks_by_kind:
        blocks = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(summary.blocks_by_kind.items())
        )
        lines.append(f"blocks generated:    {blocks}")
    lines.append(f"tip changes:         {summary.tip_changes}")
    if summary.epochs_started or summary.epochs_ended:
        lines.append(
            f"leader epochs:       {summary.epochs_started} started, "
            f"{summary.epochs_ended} ended"
        )
    if summary.gossip_retries or summary.rejects or summary.drops:
        lines.append(
            f"anomalies:           {summary.gossip_retries} retries, "
            f"{summary.rejects} rejects, {summary.drops} drops"
        )
    if summary.faults:
        faults = ", ".join(
            f"{ev}={count}" for ev, count in sorted(summary.faults.items())
        )
        lines.append(f"faults injected:     {faults}")
    lines.append(
        "sampled peaks:       "
        f"queued {summary.peak_queued_bytes:,.0f} B, "
        f"busy {summary.peak_busy_fraction:.1%}, "
        f"mempool {summary.peak_mempool}, "
        f"tips {summary.peak_tips}"
    )
    return "\n".join(lines)


# -- timeline ----------------------------------------------------------------


def format_timeline(
    records: Iterable[dict], buckets: int = 20, width: int = 40
) -> str:
    """Bucketed activity over virtual time, with an ASCII bytes bar."""
    if buckets < 1:
        raise ValueError("need at least one bucket")
    rows = [
        {"sends": 0, "bytes": 0, "blocks": 0, "tips": 0, "faults": 0}
        for _ in range(buckets)
    ]
    t_min = t_max = None
    materialized = []
    for record in records:
        if record["ev"] in ("trace_start", "trace_end"):
            continue
        materialized.append(record)
        t = record.get("t", 0.0)
        t_min = t if t_min is None else min(t_min, t)
        t_max = t if t_max is None else max(t_max, t)
    if t_min is None:
        return "(empty trace)"
    span = max(t_max - t_min, 1e-9)
    for record in materialized:
        index = min(
            int((record.get("t", 0.0) - t_min) / span * buckets), buckets - 1
        )
        row = rows[index]
        ev = record["ev"]
        if ev == "send":
            row["sends"] += 1
            row["bytes"] += record.get("size", 0)
        elif ev == "block_gen":
            row["blocks"] += 1
        elif ev == "tip_change":
            row["tips"] += 1
        elif ev in FAULT_EVENTS:
            row["faults"] += 1
    peak_bytes = max(row["bytes"] for row in rows) or 1
    show_faults = any(row["faults"] for row in rows)
    header = (
        f"{'t [s]':>12}  {'sends':>8}  {'bytes':>12}  {'blocks':>6}  "
        f"{'tips':>5}  "
    )
    if show_faults:
        header += f"{'faults':>6}  "
    lines = [header + "traffic"]
    for index, row in enumerate(rows):
        start = t_min + span * index / buckets
        bar = "#" * round(row["bytes"] / peak_bytes * width)
        line = (
            f"{start:>12.1f}  {row['sends']:>8}  {row['bytes']:>12,}  "
            f"{row['blocks']:>6}  {row['tips']:>5}  "
        )
        if show_faults:
            line += f"{row['faults']:>6}  "
        lines.append(line + bar)
    return "\n".join(lines)


# -- toptalkers --------------------------------------------------------------


def format_toptalkers(records: Iterable[dict], top: int = 10) -> str:
    """Rank nodes by bytes booked onto their outgoing links."""
    bytes_out: TallyCounter = TallyCounter()
    msgs_out: TallyCounter = TallyCounter()
    blocks_gen: TallyCounter = TallyCounter()
    for record in records:
        ev = record["ev"]
        if ev == "send":
            src = record.get("src")
            bytes_out[src] += record.get("size", 0)
            msgs_out[src] += 1
        elif ev == "block_gen":
            blocks_gen[record.get("miner")] += 1
    if not bytes_out:
        return "(no traffic recorded)"
    lines = [f"{'node':>6}  {'bytes out':>14}  {'msgs out':>10}  {'blocks':>6}"]
    ranked = sorted(
        bytes_out.items(), key=lambda item: (-item[1], item[0])
    )[:top]
    for node, total in ranked:
        lines.append(
            f"{node:>6}  {total:>14,}  {msgs_out[node]:>10}  "
            f"{blocks_gen.get(node, 0):>6}"
        )
    return "\n".join(lines)
