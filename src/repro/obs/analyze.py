"""Offline trace analysis: the engine behind ``repro trace``.

Pure functions over saved JSONL traces — no simulator required — so a
run captured once can be summarized, bucketed into a timeline, or
ranked by per-node traffic long after (and far from) the machine that
produced it.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from .trace import SCHEMA_VERSION, TraceError

TRACE_SUFFIX = ".trace.jsonl"

# Events emitted by the fault-injection engine (repro.scenarios).
FAULT_EVENTS = (
    "node_crash",
    "node_restart",
    "partition",
    "heal",
    "link_degrade",
    "link_restore",
    "msg_loss",
)


def find_traces(path: str | Path) -> list[Path]:
    """Trace files under ``path``: itself if a file, else ``*.trace.jsonl``."""
    target = Path(path)
    if target.is_file():
        return [target]
    if target.is_dir():
        traces = sorted(target.glob(f"*{TRACE_SUFFIX}"))
        if not traces:
            raise TraceError(f"no {TRACE_SUFFIX} files under {target}")
        return traces
    raise TraceError(f"no such file or directory: {target}")


def iter_records(path: str | Path) -> Iterator[dict]:
    """Parse one JSONL trace, validating the schema version per record."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(
                    f"{path}:{line_no}: not valid JSON: {exc}"
                ) from exc
            version = record.get("v")
            if version != SCHEMA_VERSION:
                raise TraceError(
                    f"{path}:{line_no}: unsupported schema version {version!r}"
                )
            yield record


def load_records(path: str | Path) -> list[dict]:
    return list(iter_records(path))


# -- summarize ---------------------------------------------------------------


@dataclass
class TraceSummary:
    """Aggregates of one trace file."""

    records: int = 0
    t_min: float = 0.0
    t_max: float = 0.0
    events: dict[str, int] = field(default_factory=dict)
    sends_by_kind: dict[str, int] = field(default_factory=dict)
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    queue_delay_count: int = 0
    queue_delay_sum: float = 0.0
    queue_delay_max: float = 0.0
    blocks_by_kind: dict[str, int] = field(default_factory=dict)
    tip_changes: int = 0
    epochs_started: int = 0
    epochs_ended: int = 0
    gossip_retries: int = 0
    rejects: int = 0
    drops: int = 0
    peak_queued_bytes: float = 0.0
    peak_busy_fraction: float = 0.0
    peak_mempool: int = 0
    peak_tips: int = 0
    faults: dict[str, int] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)
    # Epoch spans from the profiler (``prof_span`` records), when the
    # trace was captured under ``repro prof`` / a ProfilerRuntime tap.
    prof_spans: int = 0
    prof_spans_closed: int = 0
    span_duration_sum: float = 0.0
    span_micros_sum: int = 0

    @property
    def queue_delay_mean(self) -> float:
        if not self.queue_delay_count:
            return 0.0
        return self.queue_delay_sum / self.queue_delay_count

    @property
    def span_duration_mean(self) -> float:
        if not self.prof_spans_closed:
            return 0.0
        return self.span_duration_sum / self.prof_spans_closed

    @property
    def span_micros_mean(self) -> float:
        if not self.prof_spans_closed:
            return 0.0
        return self.span_micros_sum / self.prof_spans_closed

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_kind.values())


def summarize(records: Iterable[dict]) -> TraceSummary:
    """Fold a record stream into a :class:`TraceSummary`."""
    summary = TraceSummary()
    events: TallyCounter = TallyCounter()
    t_min = None
    t_max = None
    for record in records:
        ev = record["ev"]
        events[ev] += 1
        t = record.get("t", 0.0)
        if ev not in ("trace_start", "trace_end"):
            t_min = t if t_min is None else min(t_min, t)
            t_max = t if t_max is None else max(t_max, t)
        if ev == "trace_start":
            summary.meta = {
                k: v for k, v in record.items() if k not in ("v", "ev", "t")
            }
        elif ev == "send":
            kind = record.get("kind", "?")
            summary.sends_by_kind[kind] = summary.sends_by_kind.get(kind, 0) + 1
            summary.bytes_by_kind[kind] = summary.bytes_by_kind.get(
                kind, 0
            ) + record.get("size", 0)
            delay = record.get("qd", 0.0)
            if delay > 0:
                summary.queue_delay_count += 1
                summary.queue_delay_sum += delay
                summary.queue_delay_max = max(summary.queue_delay_max, delay)
        elif ev == "block_gen":
            kind = record.get("kind", "?")
            summary.blocks_by_kind[kind] = (
                summary.blocks_by_kind.get(kind, 0) + 1
            )
        elif ev == "tip_change":
            summary.tip_changes += 1
        elif ev == "epoch_start":
            summary.epochs_started += 1
        elif ev == "epoch_end":
            summary.epochs_ended += 1
        elif ev == "gossip_retry":
            summary.gossip_retries += 1
        elif ev == "obj_reject":
            summary.rejects += 1
        elif ev == "drop":
            summary.drops += 1
        elif ev == "sample_links":
            summary.peak_queued_bytes = max(
                summary.peak_queued_bytes, record.get("queued_bytes", 0.0)
            )
            summary.peak_busy_fraction = max(
                summary.peak_busy_fraction, record.get("frac", 0.0)
            )
        elif ev == "sample_mempool":
            summary.peak_mempool = max(
                summary.peak_mempool, record.get("max", 0)
            )
        elif ev == "sample_forks":
            summary.peak_tips = max(summary.peak_tips, record.get("tips", 0))
        elif ev == "prof_span":
            summary.prof_spans += 1
            if record.get("closed", True):
                summary.prof_spans_closed += 1
                summary.span_duration_sum += t - record.get("start", t)
                summary.span_micros_sum += record.get("micros", 0)
        elif ev in FAULT_EVENTS:
            summary.faults[ev] = summary.faults.get(ev, 0) + 1
    summary.events = dict(sorted(events.items()))
    summary.records = sum(events.values())
    summary.t_min = t_min if t_min is not None else 0.0
    summary.t_max = t_max if t_max is not None else 0.0
    return summary


def format_summary(summary: TraceSummary, name: str = "") -> str:
    """Human-readable report of one trace."""
    lines: list[str] = []
    if name:
        lines.append(f"== {name} ==")
    if summary.meta:
        meta = ", ".join(f"{k}={v}" for k, v in sorted(summary.meta.items()))
        lines.append(f"run:                 {meta}")
    lines.append(f"records:             {summary.records}")
    lines.append(
        f"time span:           {summary.t_min:.1f} .. {summary.t_max:.1f} s"
    )
    if summary.events:
        lines.append("event types:")
        total_records = summary.records or 1
        for ev, count in summary.events.items():
            lines.append(
                f"  {ev + ':':<19}{count:>8}  {count / total_records:>6.1%}"
            )
    if summary.sends_by_kind:
        lines.append("traffic by kind:")
        for kind in sorted(summary.sends_by_kind):
            lines.append(
                f"  {kind + ':':<19}{summary.sends_by_kind[kind]} msgs, "
                f"{summary.bytes_by_kind.get(kind, 0):,} bytes"
            )
        lines.append(f"total bytes sent:    {summary.total_bytes:,}")
    lines.append(
        "queueing delay:      "
        f"{summary.queue_delay_count} delayed sends, "
        f"mean {summary.queue_delay_mean:.3f} s, "
        f"max {summary.queue_delay_max:.3f} s"
    )
    if summary.blocks_by_kind:
        blocks = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(summary.blocks_by_kind.items())
        )
        lines.append(f"blocks generated:    {blocks}")
    lines.append(f"tip changes:         {summary.tip_changes}")
    if summary.epochs_started or summary.epochs_ended:
        lines.append(
            f"leader epochs:       {summary.epochs_started} started, "
            f"{summary.epochs_ended} ended"
        )
    if summary.prof_spans:
        open_spans = summary.prof_spans - summary.prof_spans_closed
        suffix = f", {open_spans} open at run end" if open_spans else ""
        lines.append(
            f"epoch spans:         {summary.prof_spans} profiled, "
            f"mean {summary.span_duration_mean:.1f} s, "
            f"mean {summary.span_micros_mean:.1f} microblocks{suffix}"
        )
    if summary.gossip_retries or summary.rejects or summary.drops:
        lines.append(
            f"anomalies:           {summary.gossip_retries} retries, "
            f"{summary.rejects} rejects, {summary.drops} drops"
        )
    if summary.faults:
        faults = ", ".join(
            f"{ev}={count}" for ev, count in sorted(summary.faults.items())
        )
        lines.append(f"faults injected:     {faults}")
    lines.append(
        "sampled peaks:       "
        f"queued {summary.peak_queued_bytes:,.0f} B, "
        f"busy {summary.peak_busy_fraction:.1%}, "
        f"mempool {summary.peak_mempool}, "
        f"tips {summary.peak_tips}"
    )
    return "\n".join(lines)


# -- timeline ----------------------------------------------------------------


def format_timeline(
    records: Iterable[dict], buckets: int = 20, width: int = 40
) -> str:
    """Bucketed activity over virtual time, with an ASCII bytes bar."""
    if buckets < 1:
        raise ValueError("need at least one bucket")
    rows = [
        {"sends": 0, "bytes": 0, "blocks": 0, "tips": 0, "faults": 0}
        for _ in range(buckets)
    ]
    t_min = t_max = None
    materialized = []
    for record in records:
        if record["ev"] in ("trace_start", "trace_end"):
            continue
        materialized.append(record)
        t = record.get("t", 0.0)
        t_min = t if t_min is None else min(t_min, t)
        t_max = t if t_max is None else max(t_max, t)
    if t_min is None:
        return "(empty trace)"
    span = max(t_max - t_min, 1e-9)
    for record in materialized:
        index = min(
            int((record.get("t", 0.0) - t_min) / span * buckets), buckets - 1
        )
        row = rows[index]
        ev = record["ev"]
        if ev == "send":
            row["sends"] += 1
            row["bytes"] += record.get("size", 0)
        elif ev == "block_gen":
            row["blocks"] += 1
        elif ev == "tip_change":
            row["tips"] += 1
        elif ev in FAULT_EVENTS:
            row["faults"] += 1
    peak_bytes = max(row["bytes"] for row in rows) or 1
    show_faults = any(row["faults"] for row in rows)
    header = (
        f"{'t [s]':>12}  {'sends':>8}  {'bytes':>12}  {'blocks':>6}  "
        f"{'tips':>5}  "
    )
    if show_faults:
        header += f"{'faults':>6}  "
    lines = [header + "traffic"]
    for index, row in enumerate(rows):
        start = t_min + span * index / buckets
        bar = "#" * round(row["bytes"] / peak_bytes * width)
        line = (
            f"{start:>12.1f}  {row['sends']:>8}  {row['bytes']:>12,}  "
            f"{row['blocks']:>6}  {row['tips']:>5}  "
        )
        if show_faults:
            line += f"{row['faults']:>6}  "
        lines.append(line + bar)
    return "\n".join(lines)


# -- toptalkers --------------------------------------------------------------


def format_toptalkers(records: Iterable[dict], top: int = 10) -> str:
    """Rank nodes by bytes booked onto their outgoing links.

    Node identifiers are interned through an
    :class:`~repro.net.interning.ObjectIdTable` into dense array
    indices, so per-node tallies are list-indexed integer adds instead
    of hash probes — the same layout trick the gossip hot path uses,
    applied to a trace with millions of ``send`` records.
    """
    from ..net.interning import ObjectIdTable

    node_ids: ObjectIdTable = ObjectIdTable()
    bytes_out: list[int] = []
    msgs_out: list[int] = []
    blocks_gen: list[int] = []
    for record in records:
        ev = record["ev"]
        if ev == "send":
            iid = node_ids.intern(record.get("src"))
            if iid == len(bytes_out):
                bytes_out.append(0)
                msgs_out.append(0)
                blocks_gen.append(0)
            bytes_out[iid] += record.get("size", 0)
            msgs_out[iid] += 1
        elif ev == "block_gen":
            iid = node_ids.intern(record.get("miner"))
            if iid == len(bytes_out):
                bytes_out.append(0)
                msgs_out.append(0)
                blocks_gen.append(0)
            blocks_gen[iid] += 1
    if not any(msgs_out):
        return "(no traffic recorded)"
    ranked = sorted(
        (iid for iid in range(len(bytes_out)) if msgs_out[iid]),
        key=lambda iid: (-bytes_out[iid], node_ids.obj_id(iid)),
    )[:top]
    lines = [f"{'node':>6}  {'bytes out':>14}  {'msgs out':>10}  {'blocks':>6}"]
    for iid in ranked:
        lines.append(
            f"{node_ids.obj_id(iid):>6}  {bytes_out[iid]:>14,}  "
            f"{msgs_out[iid]:>10}  {blocks_gen[iid]:>6}"
        )
    return "\n".join(lines)
