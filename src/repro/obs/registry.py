"""Labeled metric primitives and the registry that owns them.

The paper's evaluation is entirely empirical, so the reproduction needs
the same visibility into a run that the authors' testbed had: how much
traffic each message kind generates, how congested links get, how often
requests are retried.  This module provides Prometheus-shaped
primitives — :class:`Counter`, :class:`Gauge`, :class:`Histogram`, each
optionally labeled — collected into a :class:`MetricRegistry` whose
snapshot is a plain, JSON-serializable dict.

The **disabled path is a no-op singleton**: :data:`NULL_REGISTRY` hands
out :data:`NULL_METRIC` for every metric, whose methods do nothing.
Instrumented code can therefore create and update metrics
unconditionally; when observability is off the cost is one no-op method
call at rare call sites, and hot paths additionally guard with a single
boolean so the cost there is one attribute check (the perf bound is
pinned by ``benchmarks/test_perf_regression.py``).
"""

from __future__ import annotations

import bisect
from typing import Iterable

# Default histogram buckets, in seconds: spans sub-millisecond control
# message delays up to the ~80 s a 1 MB block takes at 100 kbit/s.
DEFAULT_BUCKETS = (
    0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


class MetricError(Exception):
    """Raised on metric misuse (duplicate name, bad label, bad value)."""


class _NullMetric:
    """The shared no-op metric: every operation does nothing.

    One instance (:data:`NULL_METRIC`) serves as counter, gauge, and
    histogram at once, so disabled code paths never branch on type.
    """

    __slots__ = ()

    def labels(self, **label_values: str):
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_METRIC = _NullMetric()


class _Metric:
    """Shared machinery: a named family with optional label children."""

    kind = "metric"

    def __init__(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._children: dict[tuple[str, ...], "_Metric"] = {}

    def labels(self, **label_values: str):
        """The child metric for one label combination (created lazily)."""
        if not self.labelnames:
            raise MetricError(f"metric {self.name!r} has no labels")
        try:
            key = tuple(str(label_values[name]) for name in self.labelnames)
        except KeyError as exc:
            raise MetricError(
                f"metric {self.name!r} expects labels {self.labelnames}"
            ) from exc
        child = self._children.get(key)
        if child is None:
            child = type(self)(self.name, self.help)
            self._children[key] = child
        return child

    def _check_leaf(self) -> None:
        if self.labelnames:
            raise MetricError(
                f"metric {self.name!r} is labeled; call .labels(...) first"
            )

    def _value_map(self) -> dict[str, object]:
        """label-string → scalar value(s), '' for the unlabeled case."""
        if not self.labelnames:
            return {"": self._scalar()}
        return {
            ",".join(
                f"{n}={v}" for n, v in zip(self.labelnames, key)
            ): child._scalar()
            for key, child in sorted(self._children.items())
        }

    def _scalar(self) -> object:
        raise NotImplementedError

    def snapshot(self) -> dict[str, object]:
        return {
            "type": self.kind,
            "help": self.help,
            "values": self._value_map(),
        }


class Counter(_Metric):
    """A monotonically increasing count (messages sent, bytes, retries)."""

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricError("counters only go up")
        self._check_leaf()
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def _scalar(self) -> float:
        return self._value


class Gauge(_Metric):
    """A value that goes up and down (mempool depth, queued bytes)."""

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> None:
        super().__init__(name, help, labelnames)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._check_leaf()
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._check_leaf()
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._check_leaf()
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def _scalar(self) -> float:
        return self._value


class Histogram(_Metric):
    """A distribution with fixed buckets (queueing delays, sizes)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help, labelnames)
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise MetricError("histogram needs at least one bucket")
        self._bounds = bounds
        # One slot per bound plus the +Inf overflow slot.
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def labels(self, **label_values: str):
        # Children inherit the parent's bucket layout.
        if not self.labelnames:
            raise MetricError(f"metric {self.name!r} has no labels")
        try:
            key = tuple(str(label_values[name]) for name in self.labelnames)
        except KeyError as exc:
            raise MetricError(
                f"metric {self.name!r} expects labels {self.labelnames}"
            ) from exc
        child = self._children.get(key)
        if child is None:
            child = Histogram(self.name, self.help, buckets=self._bounds)
            self._children[key] = child
        return child

    def observe(self, value: float) -> None:
        self._check_leaf()
        self._counts[bisect.bisect_left(self._bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def _scalar(self) -> dict[str, object]:
        return {
            "count": self._count,
            "sum": self._sum,
            "buckets": {
                str(bound): count
                for bound, count in zip(self._bounds, self._counts)
            },
            "overflow": self._counts[-1],
        }


class MetricRegistry:
    """Owns every metric of one run; snapshots to a plain dict."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[str, _Metric] = {}

    def _register(self, cls: type, name: str, **kwargs) -> _Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls:
                raise MetricError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            return existing
        metric = cls(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Counter:
        return self._register(Counter, name, help=help, labelnames=labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> Gauge:
        return self._register(Gauge, name, help=help, labelnames=labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram, name, help=help, labelnames=labelnames, buckets=buckets
        )

    def collect(self) -> dict[str, dict[str, object]]:
        """A deterministic, JSON-serializable snapshot of every metric."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }


class NullRegistry:
    """The disabled registry: every request returns :data:`NULL_METRIC`."""

    enabled = False

    def counter(self, name, help="", labelnames=()) -> _NullMetric:
        return NULL_METRIC

    def gauge(self, name, help="", labelnames=()) -> _NullMetric:
        return NULL_METRIC

    def histogram(self, name, help="", labelnames=(), buckets=()) -> _NullMetric:
        return NULL_METRIC

    def collect(self) -> dict:
        return {}


NULL_REGISTRY = NullRegistry()
