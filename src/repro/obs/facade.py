"""The Observability facade: one object wiring registry, tracer, samplers.

An :class:`Observability` instance is threaded through an experiment:
the :class:`~repro.net.network.Network` reads its tracer and registry,
protocol nodes pick the tracer up from the network, and the runner asks
it to install periodic samplers and to produce the final snapshot.

The disabled state is the singleton :data:`NULL_OBS` — its registry is
the null registry, its tracer is ``None``, and ``install``/``finalize``
do nothing — so un-instrumented behaviour (and performance) is the
default.  Because every experiment parameter lives in the picklable
:class:`~repro.experiments.config.ExperimentConfig`, observability
round-trips through process-pool sweep workers: each worker rebuilds
its own ``Observability`` from the config and writes to a per-cell file
named by the config's slug.
"""

from __future__ import annotations

import json
from pathlib import Path

from .registry import MetricRegistry, NULL_REGISTRY
from .samplers import ForkSampler, LinkSampler, MempoolSampler
from .trace import JsonlSink, Tracer

SNAPSHOT_VERSION = 1

# Default number of sampling points across a run when no explicit
# period is configured: enough to see dynamics, cheap to store.
DEFAULT_SAMPLE_POINTS = 100


def config_slug(config) -> str:
    """A filesystem-safe name unique per sweep cell.

    Protocol, block rate, block size, and seed are exactly the axes the
    Figure 8 grids vary, so every cell of a sweep lands in its own pair
    of files under a shared ``--obs`` directory.
    """
    protocol = getattr(config.protocol, "value", str(config.protocol))
    return (
        f"{protocol}-f{config.block_rate:g}"
        f"-b{config.block_size_bytes}-seed{config.seed}"
    )


class Observability:
    """Wires a metric registry, a tracer, and samplers into one run."""

    enabled = True

    def __init__(
        self,
        registry: MetricRegistry | None = None,
        tracer: Tracer | None = None,
        out_dir: str | Path | None = None,
        slug: str = "run",
        sample_period: float | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricRegistry()
        self.tracer = tracer
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self.slug = slug
        self.sample_period = sample_period
        self.samplers: list = []

    # -- construction -------------------------------------------------------

    @classmethod
    def from_config(cls, config) -> "Observability | _NullObservability":
        """Build from an experiment config; disabled unless it asks.

        A config with ``obs_dir`` set gets a JSONL tracer writing to
        ``<obs_dir>/<slug>.trace.jsonl`` and a metrics snapshot beside
        it; otherwise the null singleton is returned.
        """
        out_dir = getattr(config, "obs_dir", None)
        if out_dir is None:
            return NULL_OBS
        slug = config_slug(config)
        sink = JsonlSink(Path(out_dir) / f"{slug}.trace.jsonl")
        return cls(
            tracer=Tracer(sink),
            out_dir=out_dir,
            slug=slug,
            sample_period=getattr(config, "obs_sample_period", None),
        )

    # -- file layout --------------------------------------------------------

    @property
    def trace_path(self) -> Path | None:
        if self.out_dir is None:
            return None
        return self.out_dir / f"{self.slug}.trace.jsonl"

    @property
    def metrics_path(self) -> Path | None:
        if self.out_dir is None:
            return None
        return self.out_dir / f"{self.slug}.metrics.json"

    # -- run lifecycle ------------------------------------------------------

    def resolve_period(self, horizon: float) -> float:
        """The sampling period: configured, or ~100 points per run."""
        if self.sample_period is not None:
            return self.sample_period
        return max(horizon / DEFAULT_SAMPLE_POINTS, 1e-3)

    def install(self, sim, network, nodes, horizon: float, meta: dict | None = None) -> None:
        """Start samplers on ``sim`` and open the trace.

        ``horizon`` is the full virtual duration (run + cooldown);
        samplers stop there.  Sampling reads state without mutating it
        or drawing randomness, so an instrumented run stays
        bit-identical to a bare one.
        """
        if self.tracer is not None:
            self.tracer.emit("trace_start", sim.now, **(meta or {}))
        period = self.resolve_period(horizon)
        self.samplers = [
            LinkSampler(
                network,
                tracer=self.tracer,
                registry=self.registry,
                period=period,
                until=horizon,
            ),
            MempoolSampler(
                nodes,
                tracer=self.tracer,
                registry=self.registry,
                period=period,
                until=horizon,
            ),
            ForkSampler(
                nodes,
                tracer=self.tracer,
                registry=self.registry,
                period=period,
                until=horizon,
            ),
        ]
        for sampler in self.samplers:
            sampler.start(sim)

    def finalize(
        self, network=None, extra: dict | None = None, end_time: float = 0.0
    ) -> dict:
        """Close the trace and return (and maybe write) the snapshot.

        The snapshot carries the full metric registry, the per-node
        traffic summary, and sampler counts; with an output directory
        configured it is also written as ``<slug>.metrics.json``.
        """
        snapshot: dict = {
            "snapshot_version": SNAPSHOT_VERSION,
            "slug": self.slug,
            "metrics": self.registry.collect(),
            "samples_taken": {
                type(s).__name__: s.samples_taken for s in self.samplers
            },
        }
        if network is not None:
            snapshot["traffic"] = {
                "total_bytes_sent": network.total_bytes_queued(),
                "per_node": network.traffic_by_node(),
            }
        if extra:
            snapshot.update(extra)
        if self.tracer is not None:
            snapshot["trace_records"] = self.tracer.records_written + 1
            if self.trace_path is not None:
                snapshot["trace_path"] = str(self.trace_path)
            self.tracer.emit(
                "trace_end", end_time, records=self.tracer.records_written + 1
            )
            self.tracer.close()
        if self.metrics_path is not None:
            self.metrics_path.parent.mkdir(parents=True, exist_ok=True)
            self.metrics_path.write_text(
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        return snapshot


class _NullObservability:
    """The disabled singleton: nothing recorded, nothing written."""

    enabled = False
    registry = NULL_REGISTRY
    tracer = None
    out_dir = None
    slug = ""
    samplers: list = []

    def install(self, sim, network, nodes, horizon, meta=None) -> None:
        pass

    def finalize(self, network=None, extra=None, end_time=0.0) -> None:
        return None


NULL_OBS = _NullObservability()
