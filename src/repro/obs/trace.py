"""Structured event traces: schema-versioned JSONL records.

A :class:`Tracer` turns instrumented call sites into one flat JSON
object per line in a pluggable :class:`TraceSink`.  Every record carries
the schema version (``v``), the event name (``ev``), and the virtual
timestamp (``t``); the remaining fields are event-specific.  Block
hashes appear as 12-hex-char prefixes — unambiguous within a run and a
quarter the bytes of the full digest.

Record vocabulary (schema version 1):

=======================  ===================================================
``trace_start``          run metadata (protocol, nodes, seed)
``send``                 a message booked onto a link (src, dst, kind, size,
                         qd = sender-side queueing delay, arr = arrival time)
``drop``                 a send discarded by churn or a partition
``deliver``              a message handed to the destination handler
``gossip_retry``         a getdata timed out and was retried elsewhere
``obj_reject``           a delivered object failed validation (veto)
``block_gen``            a block was created (hash, kind, miner, size, n_tx)
``block_arrival``        a node first learned of a block
``tip_change``           a node's main-chain tip moved
``epoch_start``          an NG node became leader (its key block heads the
                         chain)
``epoch_end``            an NG node observed loss of its leadership
``sample_links``         periodic: busy links, busy fraction, queued bytes
``sample_mempool``       periodic: per-node mempool depth summary
``sample_forks``         periodic: distinct tips across nodes
``node_crash``           a scenario took a node offline (node, down_for?)
``node_restart``         a crashed node came back online and resynced
``partition``            a scenario split the network (groups, cut links)
``heal``                 the active partition was removed (restored links)
``link_degrade``         link latency/bandwidth multipliers applied
``link_restore``         degraded links reset to pristine parameters
``msg_loss``             the probabilistic send-loss rate changed
``invariant_violation``  a sanitizer checker fired (code, name, node,
                         message, snapshot) — checked (``--check``) runs only
``state_digest``         a sanitizer digest snapshot was captured (index =
                         events processed, nodes covered)
``prof_span``            a profiled NG leader epoch closed (leader, key_block,
                         start, micros, closed) — profiled runs only
``trace_end``            final counters, closes the file
=======================  ===================================================

The schema is append-only: new record types or fields may appear within
a version; removals or meaning changes bump ``SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

SCHEMA_VERSION = 1


class TraceError(Exception):
    """Raised when a trace cannot be written or understood."""


class JsonlSink:
    """Appends records to a ``.jsonl`` file, one compact object per line."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file: IO[str] | None = None
        self._closed = False
        self.records_written = 0

    def write(self, record: dict) -> None:
        if self._file is None:
            if self._closed:
                # Lazily reopening in "w" mode would truncate a finished
                # trace; a write after trace_end is always a caller bug.
                raise TraceError(f"write to closed trace {self.path}")
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        self.records_written += 1

    def close(self) -> None:
        self._closed = True
        if self._file is not None:
            self._file.close()
            self._file = None


class MemorySink:
    """Keeps records in a list — unit tests and in-process analysis."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    @property
    def records_written(self) -> int:
        return len(self.records)

    def write(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


def short_hash(block_hash: bytes) -> str:
    """The 12-hex-char prefix used for hashes in trace records."""
    return block_hash.hex()[:12]


class Tracer:
    """Emits schema-versioned records into a sink.

    Instrumented code holds either a ``Tracer`` or ``None``; hot paths
    guard with ``if tracer is not None`` so a disabled run pays one
    attribute check and nothing else.
    """

    __slots__ = ("sink",)

    def __init__(self, sink) -> None:
        self.sink = sink

    @property
    def records_written(self) -> int:
        return self.sink.records_written

    def emit(self, ev: str, t: float, **fields) -> None:
        record = {"v": SCHEMA_VERSION, "ev": ev, "t": t}
        record.update(fields)
        self.sink.write(record)

    def close(self) -> None:
        self.sink.close()
