#!/usr/bin/env python3
"""Appendix A: why GHOST nodes may not know the main chain.

Reconstructs Figure 9 exactly: three nodes each hold the chain
0→1→2→3→4 plus one of three siblings under the fork block 2'.  Each
node locally prefers the long chain; globally, GHOST prefers the bushy
subtree under 2'.  Nobody is right, and nobody can tell.

Run:  python examples/ghost_ambiguity.py
"""

from repro.ghost import build_appendix_a, no_view_matches_global


def main() -> None:
    scenario = build_appendix_a()
    print("GHOST main-chain ambiguity (paper Appendix A, Figure 9)\n")
    print("block tree: 0-1-2-3-4 and 1-2' with siblings 3', 3'', 3'''\n")
    global_chain = scenario.global_main_chain_labels()
    print(f"global GHOST main chain (all blocks known): "
          f"{' -> '.join(global_chain)}")
    print("  subtree(2') = 4 blocks beats subtree(2) = 3 blocks\n")
    for node in range(3):
        view_chain = scenario.view_main_chain_labels(node)
        sibling = ("3'", "3''", "3'''")[node]
        print(f"node {node + 1} (sees only {sibling}): "
              f"{' -> '.join(view_chain)}")
    print(
        f"\nno node's local choice matches the global main chain: "
        f"{no_view_matches_global(scenario)}"
    )
    print(
        "\nThis is why GHOST must propagate every block — and why the\n"
        "paper found that overhead made GHOST perform worse than Bitcoin\n"
        "in their testbed (Section 9)."
    )


if __name__ == "__main__":
    main()
