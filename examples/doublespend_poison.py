#!/usr/bin/env python3
"""Attack demo: a leader double-spends via microblock fork; poison pays.

Section 4.5 of the paper: a leader can cheaply "split the brain of the
system" by signing two conflicting microblocks.  The protocol's answer
is the poison transaction — the next leader publishes the pruned
header as a fraud proof, the cheater's epoch revenue is revoked, and
the reporter earns a 5% bounty.

Run:  python examples/doublespend_poison.py
"""

from repro.attacks import run_doublespend_scenario
from repro.core import NGParams
from repro.ledger.transactions import COIN


def main() -> None:
    params = NGParams(key_block_interval=100.0, min_microblock_interval=10.0)
    report = run_doublespend_scenario(
        params=params, fee_per_tx=2_000_000, txs_per_micro=20
    )

    print("microblock-fork double spend (Section 4.5)\n")
    print(f"1. leader signs two conflicting microblocks on one parent:")
    print(f"     retained  {report.retained_micro.hex()[:16]}…")
    print(f"     pruned    {report.pruned_micro.hex()[:16]}…")
    print(f"2. equivocation detected by honest chains: "
          f"{report.equivocation_detected}")
    print(f"3. next leader places the poison entry:    "
          f"{report.poison_accepted}")
    print(f"   (a second poison for the same cheater:  "
          f"rejected={report.duplicate_poison_rejected})")
    print(f"4. cheater's epoch revenue:")
    print(f"     without poison: "
          f"{report.offender_revenue_without_poison / COIN:.2f} coins")
    print(f"     with poison:    {report.offender_revenue / COIN:.2f} coins")
    print(f"5. reporter's bounty (5% of the revoked amount): "
          f"{report.reporter_bounty / COIN:.2f} coins")

    assert report.offender_revenue == 0
    print("\nthe fraud did not pay.")


if __name__ == "__main__":
    main()
