#!/usr/bin/env python3
"""Mining power variation: the alt-coin death spiral vs Bitcoin-NG.

Section 5.2 of the paper: when miners leave (exchange-rate moves, a
more profitable chain), block production stalls until difficulty
retargets — "potentially orders of magnitude longer" for small coins.
Bitcoin's *transaction serialization* stalls with it; Bitcoin-NG keeps
serializing in microblocks at the unchanged rate.

This example shows both: the raw difficulty control loop, and a live
two-protocol simulation with a 75% power drop mid-run.

Run:  python examples/power_variation.py
"""

from repro.api import (
    ExperimentConfig,
    PowerEvent,
    Protocol,
    build_network,
    get_adapter,
    run_power_drop,
    simulate_difficulty_dynamics,
)
from repro.metrics import ObservationLog
from repro.mining.power import exponential_shares
from repro.net.simulator import Simulator


def difficulty_control_loop() -> None:
    print("1. the difficulty control loop (10 s blocks, 100-block window)")
    report = run_power_drop(
        target_interval=10.0, window=100, drop_to=0.25, seed=1
    )
    print(f"   interval before drop:        {report.interval_before:6.1f} s")
    print(f"   interval during the stall:   {report.interval_during_stall:6.1f} s"
          f"  ({report.stall_factor:.1f}x slower)")
    print(f"   interval after retargeting:  {report.interval_after_recovery:6.1f} s")
    print(f"   blocks mined until recovery: {report.blocks_to_recover}")


def live_comparison() -> None:
    print("\n2. live protocols: 75% of mining power leaves at t=500 s")
    config = ExperimentConfig(
        n_nodes=40,
        block_rate=1.0 / 10.0,
        key_block_rate=1.0 / 50.0,
        block_size_bytes=16_660,
        target_blocks=100,
        seed=4,
    )
    for protocol in (Protocol.BITCOIN, Protocol.BITCOIN_NG):
        sim = Simulator(seed=config.seed)
        network = build_network(config, sim)
        log = ObservationLog(config.n_nodes)
        shares = exponential_shares(config.n_nodes)
        cfg = config.with_(protocol=protocol)
        nodes, scheduler = get_adapter(protocol).build_nodes(
            cfg, sim, network, log, shares
        )
        scheduler.start()
        sim.run(until=500.0)
        scheduler.set_block_rate(scheduler.block_rate * 0.25)
        sim.run(until=1000.0)
        scheduler.stop()
        sim.run(until=1030.0)
        log.finalize(1030.0)
        main = log.main_chain()
        before = sum(
            log.index.info(h).n_tx
            for h in main
            if log.index.info(h).gen_time < 500
        ) / 500.0
        after = sum(
            log.index.info(h).n_tx
            for h in main
            if log.index.info(h).gen_time >= 500
        ) / 530.0
        print(f"   {protocol.value:>11}: {before:5.2f} tx/s before, "
              f"{after:5.2f} tx/s after the drop "
              f"({after / before:5.2f}x)")
    print("\nBitcoin's serialization collapses with its block rate; NG's\n"
          "microblocks keep the ledger moving while only leader election\n"
          "slows (reduced censorship resistance, unchanged throughput).")


def main() -> None:
    difficulty_control_loop()
    live_comparison()


if __name__ == "__main__":
    main()
