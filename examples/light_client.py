#!/usr/bin/env python3
"""A light-client merchant verifying a Bitcoin-NG payment via SPV.

Bitcoin-NG is unusually friendly to light clients: the header chain
grows at the *key block* rate (one small header per ~100 s) no matter
how many transactions flow through microblocks.  A merchant keeps only
key headers; the customer's full node supplies an inclusion proof — a
Merkle branch into the signed microblock header — and the merchant
checks it against the epoch key from its own header chain plus a
burial-depth requirement.

Run:  python examples/light_client.py
"""

from repro.bitcoin.blocks import TxPayload
from repro.core import (
    LightClient,
    NGParams,
    build_inclusion_proof,
    build_key_block,
    build_microblock,
    make_ng_genesis,
)
from repro.core.remuneration import build_ng_coinbase
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.transactions import COIN, OutPoint, Transaction, TxInput, TxOutput
from repro.wallet import Wallet

PARAMS = NGParams()


def _key_block(prev, leader_key, t, miner):
    return build_key_block(
        prev_hash=prev,
        timestamp=t,
        bits=0x207FFFFF,
        leader_pubkey=leader_key.public_key().to_bytes(),
        coinbase=build_ng_coinbase(
            miner_id=miner,
            timestamp=t,
            self_pubkey_hash=hash160(leader_key.public_key().to_bytes()),
            prev_leader_pubkey_hash=None,
            prev_epoch_fees=0,
            params=PARAMS,
        ),
    )


def main() -> None:
    customer = Wallet("customer")
    merchant = Wallet("merchant")
    leader = PrivateKey.from_seed("epoch-leader")
    next_leader = PrivateKey.from_seed("next-epoch-leader")

    # The customer pays the merchant 5 coins (signed, real transaction).
    payment = Transaction(
        inputs=(TxInput(OutPoint(b"\x99" * 32, 0)),),
        outputs=(TxOutput(5 * COIN, merchant.pubkey_hash()),),
    ).sign_input(0, customer.key())
    print(f"customer pays merchant 5 coins (txid {payment.txid.hex()[:16]}…)")

    # On-chain: K1 elects a leader, whose microblock serializes the
    # payment among others; K2 closes the epoch.
    genesis = make_ng_genesis()
    k1 = _key_block(genesis.hash, leader, 10.0, miner=1)
    other_txs = tuple(
        Transaction(
            inputs=(TxInput(OutPoint(bytes([i]) * 32, 0)),),
            outputs=(TxOutput(1, bytes(20)),),
        )
        for i in range(1, 8)
    )
    micro = build_microblock(
        k1.hash, 20.0, TxPayload(other_txs + (payment,)), leader
    )
    k2 = _key_block(micro.hash, next_leader, 110.0, miner=2)
    print(f"payment lands in a microblock with {micro.n_tx} entries")

    # The merchant's light client syncs only the two key headers.
    client = LightClient(genesis)
    client.add_header(k1.header, genesis.hash)
    client.add_header(k2.header, k1.hash)
    print(f"merchant's light client holds {client.height()} key headers "
          f"(~{2 * 145} bytes) — not the microblock bodies")

    # A full node hands over the inclusion proof.
    proof = build_inclusion_proof(micro, payment.txid, k1.hash)
    print(f"inclusion proof: Merkle branch of {len(proof.merkle_branch)} "
          f"hashes + signed microblock header")

    assert client.verify(proof, min_key_depth=1)
    print("proof verifies: leader-signed, on the best header chain, "
          "buried under 1 key block ✓")

    # Tampering is caught.
    fake = Transaction(
        inputs=(TxInput(OutPoint(b"\x99" * 32, 0)),),
        outputs=(TxOutput(500 * COIN, merchant.pubkey_hash()),),
    ).sign_input(0, customer.key())
    forged = build_inclusion_proof(micro, payment.txid, k1.hash)
    forged = type(forged)(
        txid=fake.txid,
        merkle_branch=forged.merkle_branch,
        micro_header=forged.micro_header,
        micro_signature=forged.micro_signature,
        key_block_hash=forged.key_block_hash,
    )
    assert not client.verify(forged)
    print("a forged 500-coin proof is rejected ✓")


if __name__ == "__main__":
    main()
