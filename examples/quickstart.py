#!/usr/bin/env python3
"""Quickstart: run Bitcoin and Bitcoin-NG side by side and compare.

Builds a 50-node simulated network (the paper's topology at small
scale), runs each protocol at the same payload throughput, and prints
the six evaluation metrics from Section 6 of the paper.

Run:  python examples/quickstart.py
"""

from repro.api import (
    ExperimentConfig,
    Protocol,
    constant_throughput_block_size,
    run_experiment,
)

# One block every 10 seconds — far faster than operational Bitcoin, the
# regime where the protocols differ visibly.
BLOCK_FREQUENCY = 0.1

METRICS = (
    ("consensus_delay", "consensus delay", "s"),
    ("fairness", "fairness", ""),
    ("mining_power_utilization", "mining power utilization", ""),
    ("time_to_prune", "time to prune (p90)", "s"),
    ("time_to_win", "time to win (p90)", "s"),
    ("transaction_frequency", "transaction frequency", "tx/s"),
)


def main() -> None:
    base = ExperimentConfig(
        n_nodes=50,
        block_rate=BLOCK_FREQUENCY,
        block_size_bytes=constant_throughput_block_size(BLOCK_FREQUENCY),
        key_block_rate=1.0 / 100.0,
        target_blocks=60,
        target_key_blocks=15,
        seed=7,
    )
    print(f"{base.n_nodes} nodes, block/microblock frequency "
          f"{BLOCK_FREQUENCY}/s, block size {base.block_size_bytes} B\n")
    results = {}
    for protocol in (Protocol.BITCOIN, Protocol.BITCOIN_NG):
        print(f"running {protocol.value} ...")
        result, _ = run_experiment(base.with_(protocol=protocol))
        results[protocol] = result
    print(f"\n{'metric':<28}{'bitcoin':>12}{'bitcoin-ng':>12}")
    for attribute, label, unit in METRICS:
        bitcoin_value = getattr(results[Protocol.BITCOIN], attribute)
        ng_value = getattr(results[Protocol.BITCOIN_NG], attribute)
        suffix = f" {unit}" if unit else ""
        print(f"{label:<28}{bitcoin_value:>12.3f}{ng_value:>12.3f}{suffix}")
    print(
        "\nExpected shape (paper, Section 8): Bitcoin-NG keeps fairness and\n"
        "mining power utilization near 1.0 and pushes consensus delay down\n"
        "to network propagation time, while Bitcoin wastes mining power on\n"
        "forks at this frequency."
    )


if __name__ == "__main__":
    main()
