#!/usr/bin/env python3
"""The paper's headline result at example scale: the frequency sweep.

Reproduces a miniature Figure 8a: as block frequency rises, Bitcoin's
mining power utilization and time-to-prune degrade (forks!), while
Bitcoin-NG — whose contention is confined to rare key blocks — stays
at the optimum.  Full-scale sweeps live in benchmarks/.

Run:  python examples/frequency_tradeoff.py
"""

from repro.api import (
    ExperimentConfig,
    Protocol,
    format_series,
    format_sweep_table,
    frequency_sweep,
)


def main() -> None:
    base = ExperimentConfig(
        n_nodes=40,
        target_blocks=40,
        target_key_blocks=10,
        cooldown=30.0,
        seed=1,
    )
    print("sweeping block/microblock frequency (constant 3.5 tx/s payload)")
    print("this runs six small experiments; give it ~a minute\n")
    sweep = frequency_sweep(base, frequencies=(0.05, 0.2, 0.5))
    print(format_sweep_table(sweep))
    print("\nmining power utilization by frequency "
          "(Bitcoin degrades, NG does not):\n")
    print(format_series(sweep, "mining_power_utilization"))
    print("\ntime to prune (seconds):\n")
    print(format_series(sweep, "time_to_prune"))


if __name__ == "__main__":
    main()
