#!/usr/bin/env python3
"""A Bitcoin-NG payment network with real transactions.

This example uses the library in full-validation mode — the mode the
paper's testbed deliberately skipped: microblocks carry real UTXO
transactions, ECDSA signatures are produced and checked, fee revenue is
split 40/60 between leaders through key-block coinbases, and the ledger
rolls back cleanly when a leader switch prunes a microblock.

Run:  python examples/payment_network.py
"""

from repro.core import MicroblockPolicy, NGNode, NGParams, make_ng_genesis
from repro.core.genesis import seed_genesis_coins
from repro.crypto.hashing import hash160
from repro.crypto.keys import PrivateKey
from repro.ledger.transactions import COIN, Transaction, TxInput, TxOutput
from repro.net import Network, Simulator, complete_topology, constant_histogram

PARAMS = NGParams(key_block_interval=60.0, min_microblock_interval=5.0)


def main() -> None:
    sim = Simulator(seed=11)
    network = Network(
        sim, complete_topology(4), constant_histogram(0.05), bandwidth_bps=1e6
    )
    genesis = make_ng_genesis()
    nodes = [
        NGNode(
            i,
            sim,
            network,
            genesis,
            PARAMS,
            policy=MicroblockPolicy(target_bytes=50_000, synthetic=False),
            check_signatures=True,
        )
        for i in range(4)
    ]

    # Wallets: Alice holds genesis coins; Bob runs a shop.
    alice = PrivateKey.from_seed("alice-wallet")
    alice_pkh = hash160(alice.public_key().to_bytes())
    bob = PrivateKey.from_seed("bob-wallet")
    bob_pkh = hash160(bob.public_key().to_bytes())
    for node in nodes:
        outpoints = seed_genesis_coins(node.utxo, [(alice_pkh, 50 * COIN)])
    print(f"alice starts with {nodes[0].balance_of(alice_pkh) / COIN:.0f} coins")

    # Node 0 wins the first key block and leads.
    nodes[0].generate_key_block()
    sim.run(until=1.0)
    print(f"node 0 elected leader (epoch key in every chain)")

    # Alice pays Bob 20 coins with a 1-coin fee.
    payment = Transaction(
        inputs=(TxInput(outpoints[0]),),
        outputs=(
            TxOutput(20 * COIN, bob_pkh),
            TxOutput(29 * COIN, alice_pkh),  # change; 1 coin fee
        ),
    ).sign_input(0, alice)
    nodes[1].submit_transaction(payment)  # submitted anywhere, gossiped
    sim.run(until=10.0)  # the leader's next microblock serializes it
    print(
        f"payment serialized: bob={nodes[3].balance_of(bob_pkh) / COIN:.0f}, "
        f"alice={nodes[3].balance_of(alice_pkh) / COIN:.0f} "
        f"(observed at node 3)"
    )

    # Node 2 wins the next key block; its coinbase splits Alice's fee
    # 40% to the previous leader, 60% to itself.
    key2 = nodes[2].generate_key_block()
    sim.run(until=12.0)
    payouts = {
        out.pubkey_hash: out.value / COIN for out in key2.coinbase.outputs
    }
    print("\nsecond key block coinbase (fee split, Section 4.4):")
    print(f"  previous leader (node 0): {payouts[nodes[0].pubkey_hash]:.2f} coins (40% of fees)")
    print(
        f"  new leader (node 2): {payouts[nodes[2].pubkey_hash]:.2f} coins "
        f"(subsidy + 60% of fees)"
    )

    # The new leader keeps serializing; leave a moment of quiet after
    # the last microblock so the final one propagates.
    sim.run(until=43.0)
    heights = {node.node_id: node.chain.tip_record.height for node in nodes}
    print(f"\nchain heights after 43 s: {heights} (all agree)")
    assert len({node.tip for node in nodes}) == 1


if __name__ == "__main__":
    main()
